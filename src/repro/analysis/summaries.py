"""Polymorphic predicate summaries: modular analysis + persistent store.

The whole-program analyses (:mod:`repro.core.groundness`,
:mod:`repro.core.depthk`) re-derive every predicate of every file from
scratch; a corpus of N files sharing a library does the library work N
times.  This module makes the analyses *modular* in the sense of
Lunjin Lu's polymorphic groundness analysis (PAPERS.md): each SCC
component of the dependency condensation is analysed once with **open
calls** — placeholder parameters standing in for call-site bindings —
against the *summaries* of its callees instead of their clauses, and
the open result is *instantiated* per call site
(:func:`instantiate`, :meth:`~repro.core.propdom.PropFunction.assume`).

Soundness of instantiation (the argument DESIGN.md §7 spells out): the
abstract success set of a predicate — the set of ground
(boolean-vector, for Prop; shape-vector, for depth-k) successes of its
abstract program — is a property of the *program*, independent of the
evaluation strategy and of the call patterns an evaluation happened to
record.  The open-call table materialises exactly that set; any
bound-call table materialises its restriction to the call's bound
arguments.  Conditioning the open set on a call pattern
(``assume``/abstract-unify) therefore reproduces what a direct
bound-call evaluation would have tabled, so summary-instantiated
claims coincide with whole-program claims wherever both are defined —
and a summary miss or any irregularity escalates to the whole-program
analysis (never to an unsound claim).

The :class:`SummaryStore` is content-addressed: a component's key is a
SHA-256 over the analysis domain and parameters, the component's own
clause fingerprints (the same :func:`~repro.terms.variant.variant_key`
discipline as :func:`repro.serve.cache.fingerprint_program`), and the
**digests of its callee components' summaries**.  Digest-chaining makes
invalidation condensation-aware for free: editing a leaf component
changes its digest, which changes the key of every component that can
reach it — exactly the reverse-condensation closure
:func:`repro.serve.cache.dirty_components` computes explicitly — while
untouched siblings keep their keys and stay warm.  Entries live in a
bounded in-memory LRU backed by an on-disk directory (one JSON file
per key, written atomically), so worker processes of one
``map_corpus``/``--jobs N`` sweep share a store through the
filesystem.

Observability: ``summaries.hits`` / ``summaries.misses`` /
``summaries.stores`` / ``summaries.instantiations`` /
``summaries.invalidated`` counters on the ambient observer.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field

from repro.prolog.program import Indicator, Program
from repro.terms.term import Struct, Term, Var, fresh_var

#: bump when the serialized layout changes; part of every key
STORE_VERSION = 1


# ----------------------------------------------------------------------
# Canonical term serialization (JSON-able, variant-stable)


def term_to_data(term: Term, env: dict) -> object:
    """``term`` as nested JSON-able lists; variables numbered by first
    occurrence (the :func:`~repro.terms.variant.variant_key`
    discipline, so two variant answers serialize identically)."""
    if isinstance(term, Var):
        index = env.get(term.id)
        if index is None:
            index = env[term.id] = len(env)
        return ["v", index]
    if isinstance(term, Struct):
        return ["s", term.functor, [term_to_data(a, env) for a in term.args]]
    if isinstance(term, bool):  # bool before int: True is an int in Python
        raise ValueError(f"unexpected boolean in answer term: {term!r}")
    if isinstance(term, int):
        return ["i", term]
    if isinstance(term, float):
        return ["f", term]
    if isinstance(term, str):
        return ["a", term]
    raise ValueError(f"unserializable answer term: {term!r}")


def data_to_term(data: object, env: dict) -> Term:
    """Inverse of :func:`term_to_data`; ``env`` maps index -> fresh Var."""
    tag = data[0]
    if tag == "v":
        index = data[1]
        var = env.get(index)
        if var is None:
            var = env[index] = fresh_var()
        return var
    if tag == "s":
        return Struct(data[1], tuple(data_to_term(a, env) for a in data[2]))
    if tag in ("i", "f", "a"):
        return data[1]
    raise ValueError(f"corrupt serialized term: {data!r}")


# ----------------------------------------------------------------------
# Summaries


@dataclass
class PredicateSummary:
    """Open-call answers of one predicate in one analysis domain.

    ``answers`` are the abstract answer terms of the *open* (most
    general) call — for Prop, ``gp$p(...)`` instances over
    ``true``/``false``/variables; for depth-k, ``gpk$p(...)`` instances
    over shapes and ``$gamma``.  Variables are per-answer (answers do
    not share variables).
    """

    name: str
    arity: int
    answers: list = field(default_factory=list)

    @property
    def indicator(self) -> Indicator:
        return (self.name, self.arity)

    def answer_args(self, answer: Term) -> tuple:
        if self.arity == 0:
            return ()
        return answer.args

    def to_data(self) -> list:
        out = []
        for answer in self.answers:
            env: dict = {}
            out.append(
                [term_to_data(a, env) for a in self.answer_args(answer)]
            )
        return out

    @classmethod
    def from_data(cls, name: str, arity: int, data: list, head_name: str):
        answers = []
        for args_data in data:
            env: dict = {}
            args = tuple(data_to_term(a, env) for a in args_data)
            answers.append(Struct(head_name, args) if arity else head_name)
        return cls(name=name, arity=arity, answers=answers)


@dataclass
class ComponentSummary:
    """One SCC component's summaries under one (domain, params) setting."""

    domain: str  # "prop" | "depthk"
    params: dict
    component: list  # sorted indicators, as [name, arity] pairs
    predicates: dict  # Indicator -> PredicateSummary
    key: str = ""
    digest: str = ""

    def compute_digest(self) -> str:
        payload = {
            "version": STORE_VERSION,
            "domain": self.domain,
            "params": {k: self.params[k] for k in sorted(self.params)},
            "predicates": {
                f"{name}/{arity}": self.predicates[(name, arity)].to_data()
                for name, arity in sorted(self.predicates)
            },
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_json(self) -> dict:
        return {
            "version": STORE_VERSION,
            "domain": self.domain,
            "params": self.params,
            "component": [list(pair) for pair in self.component],
            "key": self.key,
            "digest": self.digest,
            "predicates": {
                f"{name}/{arity}": self.predicates[(name, arity)].to_data()
                for name, arity in sorted(self.predicates)
            },
        }

    @classmethod
    def from_json(cls, data: dict, head_prefix: str) -> "ComponentSummary":
        if data.get("version") != STORE_VERSION:
            raise ValueError("summary store version mismatch")
        predicates = {}
        for spec, answers_data in data["predicates"].items():
            name, _, arity_text = spec.rpartition("/")
            arity = int(arity_text)
            predicates[(name, arity)] = PredicateSummary.from_data(
                name, arity, answers_data, head_prefix + name
            )
        return cls(
            domain=data["domain"],
            params=data["params"],
            component=[tuple(pair) for pair in data["component"]],
            predicates=predicates,
            key=data["key"],
            digest=data["digest"],
        )


def component_key(
    domain: str, params: dict, clause_keys: tuple, callee_digests: list
) -> str:
    """Content address of one component's summary.

    ``clause_keys`` are the component's own clause ``variant_key``
    fingerprints (per sorted predicate, per clause — the keying
    :func:`repro.serve.cache.fingerprint_program` uses);
    ``callee_digests`` are ``(indicator, digest)`` pairs for every
    *defined* external callee.  Chaining callee digests into the key
    is what makes invalidation condensation-aware: a changed leaf
    re-keys everything condensation-upstream of it.
    """
    payload = repr((
        STORE_VERSION,
        domain,
        tuple(sorted(params.items())),
        clause_keys,
        tuple(sorted(callee_digests)),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def component_clause_keys(program: Program, component) -> tuple:
    """The component's clause fingerprints (``serve.cache`` discipline)."""
    from repro.terms.variant import variant_key

    keys = []
    for indicator in sorted(component):
        for clause in program.clauses_for(indicator):
            keys.append(variant_key(Struct(":-", (clause.head, clause.body))))
    return tuple(keys)


# ----------------------------------------------------------------------
# The persistent store


class SummaryStore:
    """Content-addressed component-summary store (memory LRU + disk).

    ``path=None`` keeps the store purely in-memory.  With a directory,
    every entry is also written as ``<path>/<key>.json`` (atomic
    tempfile + rename, so concurrent worker processes of one corpus
    sweep race benignly — same key, same content), and misses fall
    back to disk before recomputing.  ``max_entries`` bounds memory,
    ``max_disk_entries`` bounds the directory (oldest files pruned).

    Because keys are content addresses there is no explicit
    invalidation protocol: a stale entry is simply never asked for
    again.  The store still *detects* staleness — storing a component
    (same predicate set, same domain) under a new key drops the old
    entry and counts ``summaries.invalidated`` — so edits show up in
    the metrics rather than as silent garbage growth.
    """

    def __init__(
        self,
        path: str | None = None,
        max_entries: int = 512,
        max_disk_entries: int = 4096,
    ):
        self.path = path
        self.max_entries = max_entries
        self.max_disk_entries = max_disk_entries
        self._entries: dict = {}        # key -> ComponentSummary (LRU order)
        self._by_component: dict = {}   # (domain, component-id) -> key
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidated = 0
        self._puts = 0
        if path is not None:
            os.makedirs(path, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
        }

    def _count(self, name: str, amount: int = 1) -> None:
        from repro.obs.observer import get_observer

        obs = get_observer()
        if getattr(obs, "enabled", False):
            obs.registry.counter(f"summaries.{name}").inc(amount)

    def _disk_file(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.json")

    def get(self, key: str, head_prefix: str) -> ComponentSummary | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.pop(key)
            self._entries[key] = entry  # refresh recency
            self.hits += 1
            self._count("hits")
            return entry
        if self.path is not None:
            try:
                with open(self._disk_file(key), encoding="utf-8") as handle:
                    data = json.load(handle)
                entry = ComponentSummary.from_json(data, head_prefix)
            except (OSError, ValueError, KeyError, IndexError, TypeError):
                entry = None
            if entry is not None and entry.key == key:
                self._remember(entry)
                self.hits += 1
                self._count("hits")
                return entry
        self.misses += 1
        self._count("misses")
        return None

    def put(self, entry: ComponentSummary) -> None:
        self._remember(entry)
        self.stores += 1
        self._count("stores")
        if self.path is not None:
            self._write_disk(entry)

    def _remember(self, entry: ComponentSummary) -> None:
        stamp = (entry.domain, tuple(sorted(entry.component)))
        old_key = self._by_component.get(stamp)
        if old_key is not None and old_key != entry.key:
            # same component, new fingerprint: the old summary is stale
            if self._entries.pop(old_key, None) is not None:
                self.invalidated += 1
                self._count("invalidated")
        self._by_component[stamp] = entry.key
        self._entries.pop(entry.key, None)
        self._entries[entry.key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))

    def _write_disk(self, entry: ComponentSummary) -> None:
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.path, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry.to_json(), handle, sort_keys=True)
            os.replace(tmp, self._disk_file(entry.key))
        except OSError:
            return  # a read-only or vanished store dir degrades to memory-only
        self._puts += 1
        if self._puts % 64 == 0:
            self.prune_disk()

    def prune_disk(self) -> int:
        """Drop oldest on-disk entries beyond ``max_disk_entries``."""
        if self.path is None:
            return 0
        try:
            names = [
                n for n in os.listdir(self.path)
                if n.endswith(".json") and not n.startswith(".")
            ]
        except OSError:
            return 0
        excess = len(names) - self.max_disk_entries
        if excess <= 0:
            return 0
        def mtime(name: str) -> float:
            try:
                return os.path.getmtime(os.path.join(self.path, name))
            except OSError:
                return 0.0
        dropped = 0
        for name in sorted(names, key=mtime)[:excess]:
            try:
                os.remove(os.path.join(self.path, name))
                dropped += 1
            except OSError:
                pass
        return dropped


#: per-process store cache so one worker reuses warm memory across files
_STORES: dict = {}


def store_for(path: str | None) -> SummaryStore:
    """The per-process :class:`SummaryStore` for a directory (cached)."""
    if path is None:
        return SummaryStore()
    normalized = os.path.abspath(path)
    store = _STORES.get(normalized)
    if store is None:
        store = _STORES[normalized] = SummaryStore(normalized)
    return store


# ----------------------------------------------------------------------
# Instantiation


def instantiate(
    summary: PredicateSummary, call_pattern: tuple, prop_backend: str | None = None
):
    """Specialize an open Prop summary at one call pattern.

    ``call_pattern`` is argument-wise ``True`` (known ground at the
    call site) or anything else; the result is the per-argument
    definite-groundness tuple for calls matching that pattern — the
    same answer :meth:`PredicateGroundness.ground_on_success_for`
    computes from whole-program tables (see the module docstring for
    why).  Under the (default) BDD backend the summary's answer terms
    become one ROBDD directly — no 2^(free vars) row expansion.
    """
    _count_obs("instantiations")
    query = tuple(value is True for value in call_pattern)
    return _success_function(
        summary.arity, summary.answers, prop_backend
    ).assume(query).definitely_true()


def _success_function(arity: int, answers, prop_backend: str | None = None):
    """The Prop function of a summary's open answers, per backend.

    Serialization stays backend-independent: summaries store answer
    *terms* (``to_data``/``from_data`` above), and this is where terms
    become a Prop value — enum- and BDD-produced summaries are
    store-compatible by construction, with identical digests.
    """
    from repro.core.propdom import (
        MAX_IFF_NVARS,
        PropFunction,
        resolve_prop_backend,
    )

    if resolve_prop_backend(prop_backend) == "bdd" or arity > MAX_IFF_NVARS:
        from repro.bdd.propfn import BddPropFunction

        return BddPropFunction.from_answers(arity, answers)
    from repro.core.groundness import _expand

    rows: set = set()
    for answer in answers:
        rows.update(_expand(answer, arity))
    return PropFunction(arity, rows)


def _count_obs(name: str, amount: int = 1) -> None:
    from repro.obs.observer import get_observer

    obs = get_observer()
    if getattr(obs, "enabled", False):
        obs.registry.counter(f"summaries.{name}").inc(amount)


# ----------------------------------------------------------------------
# Modular groundness (Prop domain)


def _defined_components(program: Program):
    """Condensation pieces with clauses, callees before callers."""
    from repro.analysis.depgraph import DependencyGraph

    graph = DependencyGraph(program)
    out = []
    for component in graph.sccs():
        defined = sorted(
            ind for ind in component if program.clauses_for(ind)
        )
        if not defined:
            continue
        callees = set()
        for indicator in defined:
            callees.update(graph.successors(indicator))
        callees.difference_update(component)
        external = sorted(c for c in callees if program.clauses_for(c))
        out.append((defined, external))
    return out


def groundness_via_summaries(
    program: Program,
    store: SummaryStore | None = None,
    governor=None,
    optimize: bool = True,
    encoding: str = "compact",
    prop_backend: str | None = None,
):
    """Modular Prop groundness: per-component open-call summaries.

    Components are evaluated bottom-up in condensation order; each
    component's abstract clauses run against **stub facts** built from
    its callees' stored summaries (their open answers) instead of the
    callees' clauses.  Misses are computed and stored; hits skip the
    component's evaluation entirely.  The result is a
    :class:`~repro.core.groundness.GroundnessResult` whose per-
    predicate tables hold exactly the open (polymorphic) success set;
    per-call-site specialisation happens at query time via
    ``ground_on_success_for``'s instantiation step.

    Raises :class:`~repro.runtime.budget.ResourceExhausted` if the
    shared ``governor`` trips — the caller escalates to the
    whole-program analysis (the degradation ladder), never to a
    partial modular claim.

    ``prop_backend`` selects the Prop representation of the collected
    open success sets (``"bdd"`` by default); the *store* is backend-
    independent — answer terms, not truth rows, are what is keyed and
    persisted — so a store warmed under one backend hits under the
    other with unchanged digests.
    """
    from repro.core.groundness import (
        PredicateGroundness,
        abstract_program,
        gp_name,
    )
    from repro.obs.observer import get_observer

    obs = get_observer()
    t0 = time.perf_counter()
    abstract, info = abstract_program(program, optimize=optimize, encoding=encoding)
    support_clauses = []
    for indicator in abstract.predicates():
        if not indicator[0].startswith(gp_name("")):
            support_clauses.extend(abstract.clauses_for(indicator))
    components = _defined_components(program)
    params = {"optimize": optimize, "encoding": encoding}
    t1 = time.perf_counter()

    digests: dict = {}     # Indicator -> component digest
    summaries: dict = {}   # Indicator -> PredicateSummary
    table_space = 0
    stats: dict = {}
    with obs.maybe_span("analysis.summaries.groundness"):
        for defined, external in components:
            clause_keys = component_clause_keys(program, defined)
            callee_digests = [
                (f"{name}/{arity}", digests[(name, arity)])
                for name, arity in external
            ]
            key = component_key("prop", params, clause_keys, callee_digests)
            entry = None
            if store is not None:
                entry = store.get(key, gp_name(""))
            if entry is None:
                entry, space, engine_stats = _evaluate_prop_component(
                    abstract, support_clauses, defined, external,
                    summaries, governor,
                )
                entry.key = key
                entry.digest = entry.compute_digest()
                table_space += space
                for name, value in engine_stats.items():
                    if isinstance(value, (int, float)):
                        stats[name] = stats.get(name, 0) + value
                if store is not None:
                    store.put(entry)
            for indicator in defined:
                digests[indicator] = entry.digest
                summaries[indicator] = entry.predicates[indicator]
    t2 = time.perf_counter()

    predicates = {}
    table_completeness = {}
    for indicator in info.predicates:
        name, arity = indicator
        summary = summaries.get(indicator)
        answers = summary.answers if summary is not None else []
        success = _success_function(arity, answers, prop_backend)
        open_pattern = tuple(None for _ in range(arity))
        predicates[indicator] = PredicateGroundness(
            name=name,
            arity=arity,
            success=success,
            call_patterns=[open_pattern],
            answer_count=len(answers),
            tables=[(open_pattern, success)],
            claims=[open_pattern],
        )
        table_completeness[indicator] = True
    t3 = time.perf_counter()

    result = _summary_result_class()(
        predicates=predicates,
        times={
            "preprocess": t1 - t0,
            "analysis": t2 - t1,
            "collection": t3 - t2,
        },
        table_space=table_space,
        stats=stats,
        warnings=info.warnings,
        completeness="exact",
        table_completeness=table_completeness,
        backend="summaries",
    )
    if obs.enabled:
        obs.registry.counter("analysis.groundness.summary_runs").value += 1
    return result


def _summary_result_class():
    """``GroundnessResult`` subclass counting per-query instantiations."""
    from repro.core.groundness import GroundnessResult

    cls = getattr(_summary_result_class, "_cls", None)
    if cls is None:
        class SummaryBackedGroundness(GroundnessResult):
            def ground_on_success_for(self, indicator, pattern):
                if indicator in self.predicates:
                    _count_obs("instantiations")
                return super().ground_on_success_for(indicator, pattern)

        cls = _summary_result_class._cls = SummaryBackedGroundness
    return cls


def _never_clause(head_name: str, arity: int):
    """A never-succeeding clause for a callee with an empty summary.

    Keeps the predicate *defined* in the component module — calls to a
    provably-empty callee must fail, not raise ``undefined predicate``.
    """
    from repro.prolog.parser import Clause

    head: Term = (
        Struct(head_name, tuple(fresh_var() for _ in range(arity)))
        if arity
        else head_name
    )
    return Clause(head, "fail")


def _evaluate_prop_component(
    abstract: Program, support_clauses, defined, external, summaries, governor
):
    """Evaluate one component's abstract clauses against callee stubs."""
    from repro.core.groundness import gp_name
    from repro.engine.clausedb import ClauseDB
    from repro.engine.tabling import TabledEngine
    from repro.prolog.parser import Clause

    module = Program()
    for name, arity in defined:
        module.tabled.add((gp_name(name), arity))
        for clause in abstract.clauses_for((gp_name(name), arity)):
            module.add_clause(clause)
    for name, arity in external:
        module.tabled.add((gp_name(name), arity))
        callee = summaries[(name, arity)]
        if not callee.answers:
            module.add_clause(_never_clause(gp_name(name), arity))
            continue
        for answer in callee.answers:
            module.add_clause(Clause(answer, "true", {}, 0))
    for clause in support_clauses:
        module.add_clause(clause)

    engine = TabledEngine(ClauseDB(module), governor=governor)
    entry = ComponentSummary(
        domain="prop",
        params={},
        component=list(defined),
        predicates={},
    )
    for name, arity in defined:
        goal: Term = (
            Struct(gp_name(name), tuple(fresh_var() for _ in range(arity)))
            if arity
            else gp_name(name)
        )
        answers = engine.solve(goal)
        entry.predicates[(name, arity)] = PredicateSummary(
            name=name, arity=arity, answers=list(answers)
        )
    return entry, engine.table_space_bytes(), engine.stats.as_dict()


# ----------------------------------------------------------------------
# Modular depth-k (the failcheck backend, per-component budgets)


def depthk_via_summaries(
    program: Program,
    store: SummaryStore | None = None,
    depth: int = 2,
    component_tasks: int | None = None,
    budget=None,
    abstract_integers: bool = True,
):
    """Modular depth-k shapes with **per-component task budgets**.

    Each SCC component's abstract (``gpk$``) clauses are evaluated
    bottom-up with open calls against ``$aunify`` stub clauses built
    from callee summaries, under a *fresh* budget per component
    (``component_tasks`` tasks, or ``budget``'s limits re-armed per
    component).  A component that trips its budget — and everything
    condensation-upstream of it, which cannot be evaluated soundly
    without the tripped callee's answers — is marked incomplete and
    yields no claims; every other component keeps its exact result.
    This is what lets one expensive SCC stop forfeiting abstract
    claims for the whole file.

    Returns a :class:`~repro.core.depthk.DepthKResult`;
    ``completeness`` is ``"exact"`` or ``"partial(k/n components)"``
    and ``table_completeness`` carries the per-predicate claim
    eligibility.  Only fully evaluated components are stored.
    """
    from repro.core.depthk import (
        AUNIFY,
        DepthKResult,
        PredicateShapes,
        abstract_unify,
        depthk_program,
        gpk_name,
        truncate_goal,
    )
    from repro.engine.clausedb import ClauseDB
    from repro.engine.tabling import TabledEngine
    from repro.obs.observer import get_observer
    from repro.prolog.parser import Clause
    from repro.runtime.budget import (
        Budget,
        ResourceExhausted,
        governor_for,
    )

    obs = get_observer()
    t0 = time.perf_counter()
    abstract, warnings = depthk_program(program)
    components = _defined_components(program)
    params = {"depth": depth, "abstract_integers": abstract_integers}
    t1 = time.perf_counter()

    def component_governor():
        if budget is not None:
            return governor_for(budget, None, None)
        tasks = component_tasks
        if tasks is None:
            from repro.analysis.failcheck import DEFAULT_TASK_BUDGET

            tasks = DEFAULT_TASK_BUDGET
        return governor_for(Budget(tasks=tasks), None, None)

    digests: dict = {}
    summaries: dict = {}
    incomplete: set = set()
    trip_kinds: list = []
    table_space = 0
    stats: dict = {}
    total = len(components)
    done = 0
    with obs.maybe_span("analysis.summaries.depthk", depth=depth):
        for defined, external in components:
            if any(ind in incomplete for ind in external):
                incomplete.update(defined)
                continue
            clause_keys = component_clause_keys(program, defined)
            callee_digests = [
                (f"{name}/{arity}", digests[(name, arity)])
                for name, arity in external
            ]
            key = component_key("depthk", params, clause_keys, callee_digests)
            entry = None
            if store is not None:
                entry = store.get(key, gpk_name(""))
            if entry is None:
                module = Program()
                for name, arity in defined:
                    module.tabled.add((gpk_name(name), arity))
                    for clause in abstract.clauses_for((gpk_name(name), arity)):
                        module.add_clause(clause)
                for name, arity in external:
                    module.tabled.add((gpk_name(name), arity))
                    callee = summaries[(name, arity)]
                    if not callee.answers:
                        module.add_clause(
                            _never_clause(gpk_name(name), arity)
                        )
                        continue
                    for answer in callee.answers:
                        module.add_clause(_stub_clause(answer, gpk_name, AUNIFY))
                engine = TabledEngine(
                    ClauseDB(module),
                    governor=component_governor(),
                    call_abstraction=lambda goal: truncate_goal(
                        goal, depth, abstract_integers
                    ),
                    answer_abstraction=lambda answer: truncate_goal(
                        answer, depth, abstract_integers
                    ),
                    feed_unify=abstract_unify,
                    answer_subsumption=True,
                )
                entry = ComponentSummary(
                    domain="depthk",
                    params={},
                    component=list(defined),
                    predicates={},
                )
                try:
                    for name, arity in defined:
                        goal: Term = (
                            Struct(
                                gpk_name(name),
                                tuple(fresh_var() for _ in range(arity)),
                            )
                            if arity
                            else gpk_name(name)
                        )
                        answers = engine.solve(goal)
                        entry.predicates[(name, arity)] = PredicateSummary(
                            name=name, arity=arity, answers=list(answers)
                        )
                except ResourceExhausted as exc:
                    incomplete.update(defined)
                    trip_kinds.append(exc.kind)
                    continue
                entry.key = key
                entry.digest = entry.compute_digest()
                table_space += engine.table_space_bytes()
                for name, value in engine.stats.as_dict().items():
                    if isinstance(value, (int, float)):
                        stats[name] = stats.get(name, 0) + value
                if store is not None:
                    store.put(entry)
            done += 1
            for indicator in defined:
                digests[indicator] = entry.digest
                summaries[indicator] = entry.predicates[indicator]
    t2 = time.perf_counter()

    predicates = {}
    table_completeness = {}
    for indicator in program.predicates():
        name, arity = indicator
        summary = summaries.get(indicator)
        if summary is None:
            top: Term = (
                Struct(gpk_name(name), tuple(fresh_var() for _ in range(arity)))
                if arity
                else gpk_name(name)
            )
            predicates[indicator] = PredicateShapes(name, arity, [top], [])
            table_completeness[indicator] = False
            continue
        predicates[indicator] = PredicateShapes(
            name, arity, list(summary.answers), []
        )
        table_completeness[indicator] = True
    t3 = time.perf_counter()

    if done == total:
        completeness = "exact"
    else:
        completeness = f"partial({done}/{total} components)"
    if obs.enabled:
        obs.registry.counter("analysis.depthk.summary_runs").value += 1
        if done < total:
            obs.registry.counter(
                "analysis.depthk.incomplete_components"
            ).inc(total - done)
    result = DepthKResult(
        predicates=predicates,
        depth=depth,
        times={
            "preprocess": t1 - t0,
            "analysis": t2 - t1,
            "collection": t3 - t2,
        },
        table_space=table_space,
        stats=stats,
        warnings=warnings,
        completeness=completeness,
        effective_depth=depth,
        table_completeness=table_completeness,
    )
    result.trip_kinds = trip_kinds
    result.components_done = done
    result.components_total = total
    return result


def _stub_clause(answer: Term, gpk_name, aunify: str):
    """A callee stub in the depth-k idiom: flat head + ``$aunify`` body.

    Abstract heads must be flat (matching happens through the
    ``$aunify`` builtin, which knows the gamma rules) — a plain fact
    with ``$gamma`` in its head would be matched by *standard*
    unification and lose the gamma-matches-any-ground-term semantics.
    """
    from repro.prolog.parser import Clause

    if not isinstance(answer, Struct):
        return Clause(answer, "true", {}, 0)
    head_vars = tuple(fresh_var() for _ in answer.args)
    head = Struct(answer.functor, head_vars)
    literals = [
        Struct(aunify, (var, arg)) for var, arg in zip(head_vars, answer.args)
    ]
    body: Term = "true"
    if literals:
        body = literals[-1]
        for literal in reversed(literals[:-1]):
            body = Struct(",", (literal, body))
    return Clause(head, body, {}, 0)
