"""Predicate dependency graph with Tarjan SCC condensation.

The graph the whole subsystem hangs off: one node per predicate
indicator, one edge ``p -> q`` when a clause of ``p`` calls ``q``.
Edges remember the *call sites* that induced them (clause index, source
line, polarity), so lint rules can report precise locations and the
stratification check can tell a benign cycle from a negative one.

Tarjan's algorithm yields the strongly connected components in reverse
topological order of the condensation — callees before callers — which
is exactly the evaluation order the SCC-guided bottom-up engine wants
(:mod:`repro.engine.bottomup`) and the order the magic transformation
uses to prune query-irrelevant predicates (:mod:`repro.magic.magic`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.builtins import is_builtin
from repro.prolog.program import Indicator, Program
from repro.terms.term import Struct, Term, Var

#: control constructs handled by walking into their argument goals
_NEGATION = {("\\+", 1), ("not", 1)}
_TRANSPARENT = {(",", 2), (";", 2), ("->", 2)}
#: all-solutions builtins: argument 1 is a goal, bindings do not escape
_GOAL_ARG1 = {("findall", 3), ("bagof", 3), ("setof", 3)}


@dataclass(frozen=True)
class CallSite:
    """One body occurrence of a callable literal."""

    caller: Indicator
    callee: Indicator | None  # None: dynamic goal (variable under call/N)
    negative: bool
    clause_index: int
    line: int
    goal: Term = field(compare=False, hash=False, default=None)


class DependencyGraph:
    """Call graph over predicate indicators, with SCC condensation."""

    def __init__(self, program: Program):
        self.program = program
        self.nodes: set[Indicator] = set(program.predicates())
        self.succ: dict[Indicator, set[Indicator]] = {}
        self.neg_succ: dict[Indicator, set[Indicator]] = {}
        self.call_sites: list[CallSite] = []
        self._sccs: list[list[Indicator]] | None = None
        for indicator in program.predicates():
            self.succ.setdefault(indicator, set())
            for index, clause in enumerate(program.clauses_for(indicator)):
                for site in body_call_sites(clause.body, indicator, index, clause.line):
                    self.call_sites.append(site)
                    if site.callee is None or is_builtin(site.callee):
                        continue
                    self.nodes.add(site.callee)
                    self.succ.setdefault(site.callee, set())
                    self.succ[indicator].add(site.callee)
                    if site.negative:
                        self.neg_succ.setdefault(indicator, set()).add(site.callee)

    # ------------------------------------------------------------------
    def successors(self, indicator: Indicator) -> set[Indicator]:
        return self.succ.get(indicator, set())

    def defined(self, indicator: Indicator) -> bool:
        return bool(self.program.clauses_for(indicator))

    def sccs(self) -> list[list[Indicator]]:
        """Strongly connected components, callees before callers.

        Tarjan emits each component only after everything it can reach,
        so evaluating components in this order sees every dependency
        already complete (a topological order of the condensation,
        reversed).
        """
        if self._sccs is None:
            self._sccs = _tarjan(sorted(self.nodes), self.succ)
        return self._sccs

    def scc_index(self) -> dict[Indicator, int]:
        """Predicate -> position of its component in :meth:`sccs`."""
        return {
            node: position
            for position, component in enumerate(self.sccs())
            for node in component
        }

    def is_recursive(self, component: list[Indicator]) -> bool:
        """True for multi-predicate components and direct self-loops."""
        if len(component) > 1:
            return True
        node = component[0]
        return node in self.succ.get(node, ())

    def condensation_edges(self) -> dict[int, set[int]]:
        """Edges between SCC indices (caller component -> callee)."""
        index = self.scc_index()
        edges: dict[int, set[int]] = {i: set() for i in range(len(self.sccs()))}
        for node, targets in self.succ.items():
            for target in targets:
                if index[node] != index[target]:
                    edges[index[node]].add(index[target])
        return edges

    def reachable(self, roots) -> set[Indicator]:
        """All predicates reachable from ``roots`` (roots included)."""
        seen: set[Indicator] = set()
        stack = [r for r in roots]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.succ.get(node, ()))
        return seen


def build_dependency_graph(program: Program) -> DependencyGraph:
    """Build the predicate call graph of ``program``."""
    return DependencyGraph(program)


def prune_unreachable(program: Program, query: Term) -> Program:
    """Program restricted to predicates the query's call graph reaches.

    Used by the magic transformations: predicates the query cannot reach
    contribute nothing to the rewritten program, so dropping them up
    front keeps adornment and the generated magic rules proportional to
    the relevant slice.  Returns ``program`` itself when nothing can be
    dropped.
    """
    root = _goal_indicator(query)
    if root is None:
        return program
    graph = DependencyGraph(program)
    keep = graph.reachable([root])
    if all(indicator in keep for indicator in program.predicates()):
        return program
    pruned = Program()
    pruned.order = [ind for ind in program.order if ind in keep]
    pruned.clauses = {ind: list(program.clauses[ind]) for ind in pruned.order}
    pruned.tabled = {ind for ind in program.tabled if ind in keep}
    pruned.table_all = program.table_all
    pruned.directives = list(program.directives)
    pruned.source_lines = program.source_lines
    return pruned


# ----------------------------------------------------------------------
# Body traversal


def body_call_sites(
    body: Term, caller: Indicator, clause_index: int, line: int
) -> list[CallSite]:
    """The call sites of one clause body, control constructs interpreted."""
    return list(_walk_goal(body, caller, clause_index, line, False))


def _goal_indicator(goal: Term) -> Indicator | None:
    if isinstance(goal, Struct):
        return goal.indicator
    if isinstance(goal, str):
        return (goal, 0)
    return None


def _walk_goal(goal: Term, caller: Indicator, clause_index: int, line: int,
               negative: bool):
    """Yield the :class:`CallSite` list of one body goal."""
    if isinstance(goal, Var):
        yield CallSite(caller, None, negative, clause_index, line, goal)
        return
    indicator = _goal_indicator(goal)
    if indicator is None:  # integer etc. — ill-formed, surfaced by safety lint
        return
    name, arity = indicator
    if indicator in _TRANSPARENT:
        for arg in goal.args:
            yield from _walk_goal(arg, caller, clause_index, line, negative)
        return
    if indicator in _NEGATION:
        yield from _walk_goal(goal.args[0], caller, clause_index, line, True)
        return
    if indicator in _GOAL_ARG1:
        yield from _walk_goal(goal.args[1], caller, clause_index, line, negative)
        return
    if name == "call" and arity >= 1:
        target = goal.args[0]
        if isinstance(target, Var):
            yield CallSite(caller, None, negative, clause_index, line, goal)
            return
        if arity > 1:
            if isinstance(target, str):
                target = Struct(target, tuple(goal.args[1:]))
            elif isinstance(target, Struct):
                target = Struct(target.functor, target.args + tuple(goal.args[1:]))
        yield from _walk_goal(target, caller, clause_index, line, negative)
        return
    if name in ("true", "fail", "false", "!", "otherwise") and arity == 0:
        return
    yield CallSite(caller, indicator, negative, clause_index, line, goal)


# ----------------------------------------------------------------------
# Tarjan's strongly connected components (iterative)


def _tarjan(nodes, succ) -> list[list[Indicator]]:
    index_of: dict[Indicator, int] = {}
    lowlink: dict[Indicator, int] = {}
    on_stack: set[Indicator] = set()
    stack: list[Indicator] = []
    components: list[list[Indicator]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        # explicit DFS machine: (node, iterator over successors)
        work = [(root, iter(sorted(succ.get(root, ()))))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for target in successors:
                if target not in index_of:
                    index_of[target] = lowlink[target] = counter[0]
                    counter[0] += 1
                    stack.append(target)
                    on_stack.add(target)
                    work.append((target, iter(sorted(succ.get(target, ())))))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[target])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                component.reverse()
                components.append(component)
    return components
