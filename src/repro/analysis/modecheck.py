"""Self-applied mode checker: groundness-flow lint over logic programs.

The paper's thesis is that declarative analyses are practical *tools* —
so the lint layer eats its own dog food: this pass uses the repository's
tabled Prop groundness analysis (:mod:`repro.core.groundness`) as the
dataflow backend of a real mode checker, the way Howe & King's
Prolog-hosted analyser and XSB's compile-time checks self-apply.

Two binding tiers are threaded left-to-right through every clause body
(the sideways-information-passing order :mod:`repro.magic.adorn` uses),
starting from the call patterns declared by ``:- entry_point(...)``
directives or a query goal:

* the **optimistic** tier is classic SIPS — a user call binds every
  variable it touches.  A builtin input unbound even here can never be
  instantiated at runtime: an ``instantiation-error`` **error**.
* the **groundness** tier binds only what the tabled Prop analysis
  proves ground on success *for the inferred call pattern* (the
  per-call-pattern query API of
  :meth:`~repro.core.groundness.GroundnessResult.ground_on_success_for`).
  A builtin input bound optimistically but not provably ground is a
  "possibly unbound" ``instantiation-error`` **warning**.

Every flow diagnostic carries a *call-pattern witness* — the adorned
goal under which the defect manifests.  On top of the flow the pass
layers a determinism estimate (det / semidet / multi / nondet) per
adorned predicate from mutually-exclusive heads and builtin
multiplicities, and a syntactic ``redundant-clause`` check (a clause
subsumed by an earlier one contributes nothing under any call pattern).

Degradation ladder (the pass runs under a
:class:`~repro.runtime.budget.Budget`): **prop** (full two-tier flow)
→ **adorn** (groundness backend tripped its budget: optimistic tier
only, certain errors still reported) → **partial** (the flow fixpoint
itself tripped: diagnostics found so far are returned, the report is
marked incomplete).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.modes import (
    Determinism,
    alternation,
    join,
    list_skeleton,
    modes_for,
    seq,
)
from repro.engine.builtins import is_builtin
from repro.magic.adorn import (
    adornment_of,
    argument_bound,
    bind_literal,
    head_bound_vars,
    literal_adornment,
)
from repro.prolog.parser import Clause
from repro.prolog.program import Indicator, Program
from repro.terms.subst import EMPTY_SUBST
from repro.terms.term import Struct, Term, Var, term_variables
from repro.terms.unify import match
from repro.terms.variant import variant_key

_NEGATION = {("\\+", 1), ("not", 1)}
_ALL_SOLUTIONS = {("findall", 3), ("bagof", 3), ("setof", 3)}


@dataclass
class ModeReport:
    """Everything the mode checker learned about one program."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: adornments under which each predicate is called, from the entries
    reached: dict[Indicator, set[str]] = field(default_factory=dict)
    #: (indicator, clause index) -> head variable ids bound at clause
    #: entry under *every* reaching call pattern (caller-supplied inputs)
    entry_bound: dict[tuple[Indicator, int], set[int]] = field(default_factory=dict)
    #: (indicator, adornment) -> multiplicity estimate
    determinism: dict[tuple[Indicator, str], Determinism] = field(default_factory=dict)
    #: "prop" | "adorn" | "partial" — see module docstring
    completeness: str = "prop"
    events: list = field(default_factory=list)
    groundness: object | None = None
    #: per-pass seconds: redundant_clauses / groundness_backend / adornment
    timings: dict = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return self.completeness != "prop"

    def determinism_lines(self) -> list[str]:
        """Human-readable ``p(bf): semidet`` lines, sorted."""
        out = []
        for (indicator, adornment), detism in sorted(
            self.determinism.items(), key=lambda item: (item[0][0], item[0][1])
        ):
            out.append(f"{_witness(indicator, adornment)}: {detism}")
        return out


def entry_patterns(program: Program, query: Term | None = None) -> list[tuple[Indicator, str]]:
    """Entry call patterns: ``:- entry_point(...)`` directives + query.

    ``g`` arguments are bound, anything else free — the same convention
    the groundness driver uses for its abstract entry goals.
    """
    entries: list[tuple[Indicator, str]] = []
    for directive in program.directives:
        if not (
            isinstance(directive, Struct)
            and directive.indicator == ("entry_point", 1)
        ):
            continue
        pattern = directive.args[0]
        if isinstance(pattern, Struct):
            adornment = "".join("b" if a == "g" else "f" for a in pattern.args)
            entries.append((pattern.indicator, adornment))
        elif isinstance(pattern, str):
            entries.append(((pattern, 0), ""))
    if query is not None:
        if isinstance(query, Struct):
            entries.append((query.indicator, adornment_of(query)))
        elif isinstance(query, str):
            entries.append(((query, 0), ""))
    return entries


def check_modes(
    program: Program,
    query: Term | None = None,
    filename: str | None = None,
    budget=None,
    governor=None,
    fault=None,
    use_groundness: bool = True,
    groundness=None,
    summaries=None,
    prop_backend: str | None = None,
) -> ModeReport:
    """Run the groundness-flow mode check; see the module docstring.

    ``groundness`` may pass a precomputed
    :class:`~repro.core.groundness.GroundnessResult` (it must stem from
    the same program); otherwise the backend runs here, sharing this
    pass's governor so one budget covers the whole check.

    ``summaries`` is an optional
    :class:`~repro.analysis.summaries.SummaryStore`: the groundness
    backend is then computed modularly, reusing per-component
    summaries across files.  The escalation ladder is *summary →
    whole-program → adorn-only*: any failure of the modular backend
    (budget trip, store error) falls back to the exact whole-program
    analysis, never to an unsound claim.
    """
    import time

    from repro.runtime.budget import ResourceExhausted, governor_for
    from repro.runtime.degrade import DegradationEvent, notify_degradation

    report = ModeReport()
    gov = governor_for(budget, governor, fault)

    t0 = time.perf_counter()
    report.diagnostics.extend(_redundant_clauses(program, filename))
    report.timings["redundant_clauses"] = time.perf_counter() - t0

    entries = entry_patterns(program, query)
    if not entries:
        if filename:
            _attach_file(report, filename)
        return report

    t0 = time.perf_counter()
    if use_groundness and groundness is None and summaries is not None:
        try:
            from repro.analysis.summaries import groundness_via_summaries

            groundness = groundness_via_summaries(
                program, store=summaries, governor=gov,
                prop_backend=prop_backend,
            )
        except ResourceExhausted:
            # modular backend tripped the shared governor: re-arm it
            # and escalate to the whole-program analysis below
            gov = None if gov is None else gov.restarted()
            groundness = None
        except Exception:  # noqa: BLE001 — a broken store must never
            # block the check; escalate to the whole-program backend
            groundness = None
    if use_groundness and groundness is None:
        try:
            from repro.core.groundness import analyze_groundness

            groundness = analyze_groundness(
                program, governor=gov, degrade=False, prop_backend=prop_backend
            )
        except ResourceExhausted as exc:
            event = DegradationEvent.from_error("modecheck", "prop", exc)
            report.events.append(event)
            notify_degradation(event)
            report.completeness = "adorn"
            groundness = None
            gov = None if gov is None else gov.restarted()
    report.timings["groundness_backend"] = time.perf_counter() - t0
    if groundness is not None and groundness.degraded:
        # a degraded backend's tables under-approximate: claim nothing
        groundness = None
    if groundness is None and report.completeness == "prop":
        # disabled, exhausted, or degraded: the optimistic tier only
        report.completeness = "adorn"
    report.groundness = groundness

    t0 = time.perf_counter()
    checker = _FlowChecker(program, groundness, gov, report)
    try:
        checker.run(entries)
        checker.finish()
        _estimate_determinism(program, checker, report)
    except ResourceExhausted as exc:
        event = DegradationEvent.from_error("modecheck", report.completeness, exc)
        report.events.append(event)
        notify_degradation(event)
        report.completeness = "partial"
    report.timings["adornment"] = time.perf_counter() - t0

    if filename:
        _attach_file(report, filename)
    return report


def _attach_file(report: ModeReport, filename: str) -> None:
    report.diagnostics = [d.with_file(filename) for d in report.diagnostics]


def _witness(indicator: Indicator, adornment: str) -> str:
    name, arity = indicator
    if not arity:
        return name
    if not adornment:
        adornment = "f" * arity
    return f"{name}({','.join(adornment)})"


# ----------------------------------------------------------------------
# The two-tier binding flow


class _State:
    """Bound-variable sets of both tiers at one program point."""

    __slots__ = ("opt", "prop")

    def __init__(self, opt: set[int], prop: set[int]):
        self.opt = opt
        self.prop = prop

    def copy(self) -> "_State":
        return _State(set(self.opt), set(self.prop))

    def merge(self, other: "_State") -> None:
        """Join of two branches: bound afterwards = bound in both."""
        self.opt &= other.opt
        self.prop &= other.prop


class _FlowChecker:
    """Worklist fixpoint over (predicate, adornment) pairs."""

    def __init__(self, program: Program, groundness, governor, report: ModeReport):
        self.program = program
        self.groundness = groundness
        self.governor = governor
        self.report = report
        self.worklist: deque[tuple[Indicator, str]] = deque()
        self.seen: set[tuple[Indicator, str]] = set()
        #: diagnostics deduplicated across call patterns (the worst
        #: severity wins; first witness at that severity)
        self.found: dict[tuple, Diagnostic] = {}
        #: clause key -> reaching patterns / patterns with a certain error
        self.clause_patterns: dict[tuple[Indicator, int], set[str]] = {}
        self.clause_errors: dict[tuple[Indicator, int], set[str]] = {}
        #: body call sites per (clause key, pattern), for determinism
        self.clause_lines: dict[tuple[Indicator, int], int] = {}

    # -- worklist ------------------------------------------------------
    def enqueue(self, indicator: Indicator, adornment: str) -> None:
        key = (indicator, adornment)
        if key in self.seen:
            return
        self.seen.add(key)
        self.worklist.append(key)
        self.report.reached.setdefault(indicator, set()).add(adornment)

    def run(self, entries: list[tuple[Indicator, str]]) -> None:
        for indicator, adornment in entries:
            self.enqueue(indicator, adornment)
        while self.worklist:
            indicator, adornment = self.worklist.popleft()
            for index, clause in enumerate(self.program.clauses_for(indicator)):
                if self.governor is not None:
                    self.governor.charge("steps", clause.head)
                self._check_clause(indicator, index, clause, adornment)

    def finish(self) -> None:
        """Emit the deduplicated diagnostics and clause-level rollups."""
        self.report.diagnostics.extend(self.found.values())
        for key, reaching in self.clause_patterns.items():
            indicator, index = key
            erring = self.clause_errors.get(key, set())
            if reaching and erring == reaching:
                patterns = ", ".join(
                    _witness(indicator, a) for a in sorted(reaching)
                )
                self.report.diagnostics.append(
                    Diagnostic(
                        "mode-conflict",
                        Severity.ERROR,
                        "clause satisfies no inferred call pattern "
                        f"(all of: {patterns})",
                        indicator,
                        index,
                        self.clause_lines.get(key, 0),
                        witness=_witness(indicator, sorted(reaching)[0]),
                    )
                )

    # -- per clause ----------------------------------------------------
    def _check_clause(
        self, indicator: Indicator, index: int, clause: Clause, adornment: str
    ) -> None:
        key = (indicator, index)
        self.clause_lines[key] = clause.line
        self.clause_patterns.setdefault(key, set()).add(adornment)
        head_bound = head_bound_vars(clause.head, adornment)
        bound = self.report.entry_bound.get(key)
        if bound is None:
            self.report.entry_bound[key] = set(head_bound)
        else:
            bound &= head_bound
        context = _Context(self, indicator, index, clause, adornment)
        state = _State(set(head_bound), set(head_bound))
        context.walk(clause.body, state)
        if context.certain_error:
            self.clause_errors.setdefault(key, set()).add(adornment)

    # -- diagnostics ---------------------------------------------------
    def record(self, dedup_key: tuple, diagnostic: Diagnostic) -> None:
        existing = self.found.get(dedup_key)
        if existing is None or diagnostic.severity > existing.severity:
            self.found[dedup_key] = diagnostic


class _Context:
    """One (clause, call pattern) traversal; emits flow diagnostics."""

    def __init__(self, checker: _FlowChecker, indicator, index, clause, adornment):
        self.checker = checker
        self.indicator = indicator
        self.index = index
        self.clause = clause
        self.adornment = adornment
        self.certain_error = False

    @property
    def witness(self) -> str:
        return _witness(self.indicator, self.adornment)

    # -- traversal -----------------------------------------------------
    def walk(self, goal: Term, state: _State) -> None:
        if goal in ("true", "!", "fail", "false", "otherwise"):
            return
        if isinstance(goal, (Var, int)):
            return  # dynamic or ill-formed goal: handled elsewhere
        indicator = goal.indicator if isinstance(goal, Struct) else (goal, 0)
        name, arity = indicator
        if name == "," and arity == 2:
            self.walk(goal.args[0], state)
            self.walk(goal.args[1], state)
            return
        if name == ";" and arity == 2:
            left, right = goal.args
            left_state = state.copy()
            if isinstance(left, Struct) and left.indicator == ("->", 2):
                self.walk(left.args[0], left_state)
                self.walk(left.args[1], left_state)
            else:
                self.walk(left, left_state)
            self.walk(right, state)
            state.merge(left_state)
            return
        if name == "->" and arity == 2:
            self.walk(goal.args[0], state)
            self.walk(goal.args[1], state)
            return
        if indicator in _NEGATION:
            self._negation(goal, state)
            return
        if indicator in _ALL_SOLUTIONS:
            self._all_solutions(goal, state)
            return
        if name == "call" and arity >= 1:
            target = goal.args[0]
            if isinstance(target, Var):
                return
            if arity > 1:
                if isinstance(target, str):
                    target = Struct(target, tuple(goal.args[1:]))
                elif isinstance(target, Struct):
                    target = Struct(target.functor, target.args + tuple(goal.args[1:]))
            self.walk(target, state)
            return
        if is_builtin(indicator):
            self._builtin(goal, indicator, state)
            return
        self._user_call(goal, indicator, state)

    # -- negation ------------------------------------------------------
    def _negation(self, goal: Term, state: _State) -> None:
        inner = goal.args[0]
        # anonymous (_-prefixed) variables under \+ are the existential
        # idiom ("no such thing exists"), not a floundering bug
        unbound_opt = [
            v
            for v in term_variables(inner)
            if v.id not in state.opt and _named(v)
        ]
        unbound_prop = [
            v
            for v in term_variables(inner)
            if v.id not in state.prop and _named(v)
        ]
        if unbound_opt:
            self._report(
                "unsafe-negation",
                Severity.WARNING,
                f"negated goal {_goal_name(inner)} has unbound "
                f"{_var_list(unbound_opt)}; negation-as-failure over a "
                "non-ground goal flounders",
                ("unsafe-negation", self.indicator, self.index, _goal_name(inner)),
            )
        elif unbound_prop:
            self._report(
                "unsafe-negation",
                Severity.WARNING,
                f"negated goal {_goal_name(inner)} has possibly unbound "
                f"{_var_list(unbound_prop)} (groundness analysis cannot "
                "prove groundness); negation-as-failure may flounder",
                ("unsafe-negation", self.indicator, self.index, _goal_name(inner)),
            )
        # the inner goal still runs: check its flow in a sandbox
        self.walk(inner, state.copy())

    # -- all-solutions -------------------------------------------------
    def _all_solutions(self, goal: Term, state: _State) -> None:
        template, inner, result = goal.args
        sandbox = state.copy()
        self.walk(inner, sandbox)
        # the collected list is ground iff every template instance is
        if argument_bound(template, sandbox.opt):
            bind_literal(result, state.opt)
        if argument_bound(template, sandbox.prop):
            bind_literal(result, state.prop)

    # -- builtins ------------------------------------------------------
    def _builtin(self, goal: Term, indicator: Indicator, state: _State) -> None:
        decl = modes_for(indicator)
        if decl is None:
            return  # undeclared builtin: safety reports unknown-builtin
        args = goal.args if isinstance(goal, Struct) else ()
        certain = self._check_tier(goal, indicator, decl, args, state.opt, True)
        if certain:
            self.certain_error = True
        if self.checker.groundness is not None and not certain:
            self._check_tier(goal, indicator, decl, args, state.prop, False)
        self._apply_builtin(decl, args, state.opt, grounds=False)
        self._apply_builtin(decl, args, state.prop, grounds=True)

    def _check_tier(self, goal, indicator, decl, args, bound, certain: bool) -> bool:
        """Mode-check one tier; returns True when a violation fired."""
        satisfied = [
            alternative
            for alternative in decl.alternatives
            if self._requires_met(decl, args, alternative[0], bound)
        ]
        if satisfied:
            return False
        # name the inputs of the closest alternative (fewest unbound)
        best = min(
            decl.alternatives,
            key=lambda alt: len(self._unbound(args, alt[0], bound)),
        )
        offenders = self._unbound(args, best[0], bound)
        name = f"{indicator[0]}/{indicator[1]}"
        if certain:
            self._report(
                "instantiation-error",
                Severity.ERROR,
                f"builtin {name} needs {_var_list(offenders)} bound, but "
                "nothing on any path to this call binds "
                f"{'it' if len(offenders) == 1 else 'them'}",
                ("instantiation-error", self.indicator, self.index, _goal_name(goal)),
            )
        else:
            self._report(
                "instantiation-error",
                Severity.WARNING,
                f"builtin {name} needs {_var_list(offenders)} bound, and "
                "the groundness analysis cannot prove "
                f"{'it' if len(offenders) == 1 else 'them'} ground here",
                ("instantiation-error", self.indicator, self.index, _goal_name(goal)),
            )
        return True

    @staticmethod
    def _unbound(args, positions, bound) -> list[Var]:
        out: list[Var] = []
        seen: set[int] = set()
        for position in positions:
            for var in term_variables(args[position]):
                if var.id not in bound and var.id not in seen:
                    seen.add(var.id)
                    out.append(var)
        return out

    @staticmethod
    def _requires_met(decl, args, positions, bound) -> bool:
        """One alternative's inputs are satisfied in the given tier."""
        return all(
            argument_bound(args[p], bound)
            or (p in decl.skeleton and list_skeleton(args[p], bound))
            for p in positions
        )

    @staticmethod
    def _apply_builtin(decl, args, bound: set[int], grounds: bool) -> None:
        """Post-state of one tier: bindings of the satisfied modes.

        ``grounds`` marks the groundness tier: a mode satisfied only
        through a list skeleton instantiates its output without
        grounding it, so its binds apply to the optimistic tier alone
        (``propagates`` still grounds the output once the whole
        skeleton is ground).
        """
        satisfied = False
        for requires, binds in decl.alternatives:
            fully_ground = all(argument_bound(args[p], bound) for p in requires)
            if not fully_ground and not _Context._requires_met(
                decl, args, requires, bound
            ):
                continue
            satisfied = True
            if not fully_ground and grounds:
                continue
            for position in binds:
                bind_literal(args[position], bound)
        if not satisfied:
            # after reporting, assume the intended mode to avoid cascades
            for position in decl.all_binds():
                bind_literal(args[position], bound)
        for src, dst in decl.propagates:
            if argument_bound(args[src], bound):
                bind_literal(args[dst], bound)

    # -- user calls ----------------------------------------------------
    def _user_call(self, goal: Term, indicator: Indicator, state: _State) -> None:
        checker = self.checker
        args = goal.args if isinstance(goal, Struct) else ()
        if checker.program.clauses_for(indicator):
            adornment = literal_adornment(goal, state.opt)
            checker.enqueue(indicator, adornment)
            if checker.groundness is not None:
                pattern = tuple(
                    argument_bound(arg, state.prop) or None for arg in args
                )
                ground_out = checker.groundness.ground_on_success_for(
                    indicator, tuple(p is True for p in pattern)
                )
                for position, definite in enumerate(ground_out):
                    if definite:
                        bind_literal(args[position], state.prop)
            else:
                bind_literal(goal, state.prop)
        else:
            # undefined or dynamic: undefined-call reports it; stay lenient
            bind_literal(goal, state.prop)
        bind_literal(goal, state.opt)

    # -- helpers -------------------------------------------------------
    def _report(self, rule, severity, message, dedup_key) -> None:
        self.checker.record(
            dedup_key,
            Diagnostic(
                rule,
                severity,
                message,
                self.indicator,
                self.index,
                self.clause.line,
                witness=self.witness,
            ),
        )


def _named(var: Var) -> bool:
    """Variables the user wrote and did not mark as don't-care."""
    name = getattr(var, "name", None)
    return bool(name) and not name.startswith("_")


def _goal_name(goal: Term) -> str:
    if isinstance(goal, Struct):
        return f"{goal.functor}/{goal.arity}"
    if isinstance(goal, str):
        return f"{goal}/0"
    return repr(goal)


def _var_list(variables) -> str:
    names = ", ".join(v.name or f"_G{v.id}" for v in variables)
    if len(variables) == 1:
        return f"variable {names}"
    return f"variables {names}"


# ----------------------------------------------------------------------
# Determinism estimation


def _estimate_determinism(program: Program, checker: _FlowChecker, report: ModeReport) -> None:
    """Fixpoint multiplicity estimate per reached (predicate, adornment).

    Clause bodies combine builtin multiplicities sequentially; clauses
    combine by :func:`~repro.analysis.modes.join` when their heads are
    pairwise distinguishable at some bound argument position (at most
    one can match — but coverage is unknowable, so failure is assumed
    possible) and by :func:`~repro.analysis.modes.alternation`
    otherwise.
    """
    pairs = sorted(checker.seen)
    estimates: dict[tuple[Indicator, str], Determinism] = {
        pair: Determinism.DET for pair in pairs
    }
    for _round in range(4 * len(pairs) + 4):
        changed = False
        for pair in pairs:
            new = _pred_determinism(program, pair, estimates)
            if new != estimates[pair]:
                estimates[pair] = new
                changed = True
        if not changed:
            break
    report.determinism = estimates


def _pred_determinism(program: Program, pair, estimates) -> Determinism:
    indicator, adornment = pair
    clauses = program.clauses_for(indicator)
    if not clauses:
        return Determinism.NONDET
    per_clause = []
    for clause in clauses:
        bound = head_bound_vars(clause.head, adornment)
        detism = _head_determinism(clause.head, adornment)
        detism = seq(detism, _goal_determinism(clause.body, bound, program, estimates))
        per_clause.append(detism)
    result = per_clause[0]
    exclusive = _mutually_exclusive(clauses, adornment)
    for detism in per_clause[1:]:
        result = join(result, detism) if exclusive else alternation(result, detism)
    if exclusive and len(clauses) > 1:
        # at most one clause applies, but nothing proves one must
        result = Determinism((True, result.can_multi))
    return result


def _head_determinism(head: Term, adornment: str) -> Determinism:
    """Head unification: can it fail?  (Never yields extra solutions.)"""
    if not isinstance(head, Struct):
        return Determinism.DET
    seen: set[int] = set()
    for arg, kind in zip(head.args, adornment or "f" * head.arity):
        if kind == "b" and not isinstance(arg, Var):
            return Determinism.SEMIDET  # bound argument matched structurally
        if isinstance(arg, Var):
            if arg.id in seen:
                return Determinism.SEMIDET  # repeated variable: equality test
            seen.add(arg.id)
    return Determinism.DET


def _goal_determinism(goal: Term, bound: set[int], program, estimates) -> Determinism:
    if goal in ("true", "!", "otherwise"):
        return Determinism.DET
    if goal in ("fail", "false"):
        return Determinism.SEMIDET
    if isinstance(goal, (Var, int)):
        return Determinism.NONDET
    indicator = goal.indicator if isinstance(goal, Struct) else (goal, 0)
    name, arity = indicator
    if name == "," and arity == 2:
        left = _goal_determinism(goal.args[0], bound, program, estimates)
        right = _goal_determinism(goal.args[1], bound, program, estimates)
        return seq(left, right)
    if name == ";" and arity == 2:
        left_goal, right_goal = goal.args
        if isinstance(left_goal, Struct) and left_goal.indicator == ("->", 2):
            left_goal = Struct(",", left_goal.args)
        left = _goal_determinism(left_goal, set(bound), program, estimates)
        right = _goal_determinism(right_goal, set(bound), program, estimates)
        return alternation(left, right)
    if name == "->" and arity == 2:
        left = _goal_determinism(goal.args[0], bound, program, estimates)
        right = _goal_determinism(goal.args[1], bound, program, estimates)
        return seq(left, right)
    if indicator in _NEGATION:
        return Determinism.SEMIDET
    if indicator in _ALL_SOLUTIONS:
        return Determinism.DET
    if name == "call" and arity >= 1:
        return Determinism.NONDET
    if is_builtin(indicator):
        detism = _builtin_determinism(goal, indicator, bound)
        bind_literal(goal, bound)
        return detism
    adornment = literal_adornment(goal, bound)
    bind_literal(goal, bound)
    return estimates.get((indicator, adornment), Determinism.NONDET)


def _builtin_determinism(goal, indicator: Indicator, bound: set[int]) -> Determinism:
    # output modes of =/2 and is/2 cannot fail: a fresh variable on one
    # side takes whatever the other side produces
    if indicator == ("is", 2) or indicator == ("=", 2):
        target = goal.args[0]
        if isinstance(target, Var) and target.id not in bound:
            return Determinism.DET
        if indicator == ("=", 2):
            other = goal.args[1]
            if isinstance(other, Var) and other.id not in bound:
                return Determinism.DET
        return Determinism.SEMIDET
    decl = modes_for(indicator)
    return decl.detism if decl is not None else Determinism.NONDET


def _mutually_exclusive(clauses: list[Clause], adornment: str) -> bool:
    """True when at most one clause can succeed for any single call.

    Holds when every clause pair is distinguishable, either by distinct
    non-variable functors at some bound argument position, or by
    complementary arithmetic guards over the same head variables (the
    ``X =< P`` / ``X > P`` partition idiom).
    """
    if len(clauses) < 2:
        return True
    if not all(isinstance(c.head, Struct) for c in clauses):
        return False
    return all(
        _exclusive_pair(clauses[i], clauses[j], adornment)
        for i in range(len(clauses))
        for j in range(i + 1, len(clauses))
    )


def _exclusive_pair(a: Clause, b: Clause, adornment: str) -> bool:
    for position in range(min(a.head.arity, b.head.arity, len(adornment))):
        if adornment[position] != "b":
            continue
        x, y = a.head.args[position], b.head.args[position]
        if isinstance(x, Var) or isinstance(y, Var):
            continue
        key_x = x.indicator if isinstance(x, Struct) else (x, "atomic")
        key_y = y.indicator if isinstance(y, Struct) else (y, "atomic")
        if key_x != key_y:
            return True
    return _complementary_guards(a, b)


#: arithmetic/order test pairs where at most one can succeed on the
#: same (instantiated) arguments
_COMPLEMENT = {
    ("=<", ">"), (">", "=<"), ("<", ">="), (">=", "<"),
    ("=:=", "=\\="), ("=\\=", "=:="), ("==", "\\=="), ("\\==", "=="),
}


def _complementary_guards(a: Clause, b: Clause) -> bool:
    """First body goals are complementary tests on corresponding terms.

    Correspondence comes from the common structure of the two heads:
    variables sitting at the same path of structurally identical head
    parts receive the same value for any single call, so complementary
    guards over them cannot both succeed.
    """
    guard_a, guard_b = _first_goal(a.body), _first_goal(b.body)
    if not (isinstance(guard_a, Struct) and isinstance(guard_b, Struct)):
        return False
    if guard_a.arity != 2 or guard_b.arity != 2:
        return False
    if (guard_a.functor, guard_b.functor) not in _COMPLEMENT:
        return False
    mapping = _head_var_mapping(a.head, b.head)
    if mapping is None:
        return False
    return all(
        _mapped_equal(x, y, mapping)
        for x, y in zip(guard_a.args, guard_b.args)
    )


def _first_goal(body: Term) -> Term | None:
    while isinstance(body, Struct) and body.indicator == (",", 2):
        body = body.args[0]
    return body


def _head_var_mapping(head_a: Term, head_b: Term) -> dict[int, int] | None:
    """Variable correspondence from the heads' common structure.

    Positions where the two heads have different shapes constrain
    nothing and are skipped; an inconsistent mapping aborts (claim
    nothing rather than guess).
    """
    if not (
        isinstance(head_a, Struct)
        and isinstance(head_b, Struct)
        and head_a.arity == head_b.arity
    ):
        return None
    forward: dict[int, int] = {}
    backward: dict[int, int] = {}
    stack = list(zip(head_a.args, head_b.args))
    while stack:
        x, y = stack.pop()
        if isinstance(x, Var) and isinstance(y, Var):
            if forward.get(x.id, y.id) != y.id or backward.get(y.id, x.id) != x.id:
                return None
            forward[x.id] = y.id
            backward[y.id] = x.id
        elif (
            isinstance(x, Struct)
            and isinstance(y, Struct)
            and x.indicator == y.indicator
        ):
            stack.extend(zip(x.args, y.args))
    return forward


def _mapped_equal(x: Term, y: Term, forward: dict[int, int]) -> bool:
    stack = [(x, y)]
    while stack:
        x, y = stack.pop()
        if isinstance(x, Var):
            if not (isinstance(y, Var) and forward.get(x.id) == y.id):
                return False
        elif isinstance(x, Struct):
            if not (
                isinstance(y, Struct)
                and x.indicator == y.indicator
            ):
                return False
            stack.extend(zip(x.args, y.args))
        else:
            if isinstance(y, (Var, Struct)) or x != y:
                return False
    return True


# ----------------------------------------------------------------------
# Redundant clauses (syntactic subsumption)


def _skolemize(term: Term) -> Term:
    """Replace every variable with a distinct constant term.

    Makes the instance-of test honest: ``match`` must not be allowed to
    bind the candidate's variables (repeated pattern variables would
    otherwise alias them away).
    """
    mapping: dict[int, Struct] = {}

    def walk(t: Term) -> Term:
        if isinstance(t, Var):
            if t.id not in mapping:
                mapping[t.id] = Struct("$sk", (len(mapping),))
            return mapping[t.id]
        if isinstance(t, Struct):
            return Struct(t.functor, tuple(walk(a) for a in t.args))
        return t

    return walk(term)


def _redundant_clauses(program: Program, filename: str | None) -> list[Diagnostic]:
    """Clauses that can contribute no answer under any call pattern.

    Two sound cases: a clause that is a *variant* of an earlier clause
    of the same predicate (an exact duplicate), and a clause whose head
    is an instance of an earlier *fact*'s head (every answer it could
    produce is already an answer of that fact).
    """
    out: list[Diagnostic] = []
    for indicator in program.predicates():
        clauses = program.clauses_for(indicator)
        if len(clauses) < 2:
            continue
        keys = [
            variant_key(Struct(":-", (c.head, c.body)), EMPTY_SUBST) for c in clauses
        ]
        for later_index in range(1, len(clauses)):
            later = clauses[later_index]
            for earlier_index in range(later_index):
                earlier = clauses[earlier_index]
                duplicate = keys[earlier_index] == keys[later_index]
                # skolemize the later head: its variables must behave as
                # constants for instance-of, and clause variable ids can
                # collide across clauses (the parser numbers per clause)
                subsumed = (
                    earlier.is_fact()
                    and match(
                        earlier.head, _skolemize(later.head), EMPTY_SUBST
                    )
                    is not None
                )
                if not duplicate and not subsumed:
                    continue
                reason = (
                    "is an exact duplicate of"
                    if duplicate
                    else "is subsumed by fact"
                )
                out.append(
                    Diagnostic(
                        "redundant-clause",
                        Severity.WARNING,
                        f"clause {reason} clause {earlier_index + 1}; it can "
                        "contribute no new answer under any call pattern",
                        indicator,
                        later_index,
                        later.line,
                        witness=f"clause {earlier_index + 1}",
                    )
                )
                break
    return out
