"""The supervised worker pool: fault-isolated analysis processes.

The daemon never runs untrusted analysis work in its own process (a
pathological input must not take the service down), and it cannot use
:class:`concurrent.futures.ProcessPoolExecutor` either — a hung worker
is invisible to an executor (no per-worker kill), and a hard death
(``os._exit``, OOM kill) breaks the *whole* executor.  So the pool here
is a small explicit supervision tree:

* each :class:`_Worker` is one ``multiprocessing.Process`` with a
  duplex pipe; the child loops ``recv -> run task -> send reply``;
* :meth:`WorkerPool.submit` checks a worker out, enforces the request
  deadline with ``Connection.poll(timeout)``, and on any fault —
  closed pipe (crash), poll timeout (hang), malformed reply (corrupt)
  — **kills and respawns just that worker**, then raises a typed
  :class:`WorkerFailure` for the daemon's retry/breaker machinery;
* worker replies carry the worker's private metrics snapshot, folded
  into the supervisor's registry exactly as :func:`map_corpus` does.

Tasks are the corpus tasks (:data:`repro.parallel.corpus.TASKS`) run
under a :class:`~repro.runtime.budget.Budget` whose deadline mirrors
the request deadline — cooperative degradation inside the worker, hard
kill from outside it, in that order.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import time


class WorkerFailure(Exception):
    """A worker-side fault the supervisor recovered from (retryable)."""

    kind = "worker-failure"
    #: checkout wait before the fault (set by :meth:`WorkerPool.submit`)
    queue_seconds = 0.0


class WorkerCrashed(WorkerFailure):
    """The worker process died while holding the request."""

    kind = "crash"


class WorkerHung(WorkerFailure):
    """No reply within the request deadline; the worker was killed."""

    kind = "hang"


class WorkerCorrupt(WorkerFailure):
    """The worker replied with a malformed object; it was killed."""

    kind = "corrupt"


#: most-recent worker spans shipped per reply (bounds the pickle size)
WORKER_SPAN_LIMIT = 512


def _worker_main(conn) -> None:
    """Child process loop: execute one task per message until EOF/None."""
    from repro.obs import Observer, Tracer, TraceContext, use_observer
    from repro.obs.distributed import process_label
    from repro.parallel.corpus import TASKS
    from repro.runtime.budget import Budget
    from repro.runtime.faultinject import CORRUPT_REPLY, apply_process_fault

    label = process_label()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        job_id, task, path, options, deadline, inject, trace = message
        # the injected fault fires before any analysis work: abort kills
        # the process here, hang wedges it here, corrupt garbles the
        # reply below — all externally indistinguishable from the real
        # faults they model
        corrupt = apply_process_fault(inject) == CORRUPT_REPLY
        # adopt the supervisor's trace context: the worker's tracer
        # records under the request's trace_id with *local* span ids,
        # remapped into the supervisor's id space at stitch time
        context = TraceContext.from_wire(trace) if trace else None
        tracer = Tracer(capacity=WORKER_SPAN_LIMIT,
                        trace_id=context.trace_id if context else None)
        observer = Observer(tracer=tracer)
        started = time.perf_counter()
        payload, error = None, None
        try:
            options = dict(options or {})
            if deadline is not None:
                # tasks that understand budgets degrade cooperatively
                options.setdefault("deadline", deadline)
            with use_observer(observer):
                with tracer.span("worker.task", task=task, path=path,
                                 process=label):
                    payload = TASKS[task](path, options)
        except Exception as exc:  # noqa: BLE001 — becomes a structured reply
            error = f"{type(exc).__name__}: {exc}"
        reply = {
            "job": job_id,
            "payload": payload,
            "error": error,
            "seconds": time.perf_counter() - started,
            "metrics": observer.registry.snapshot(),
        }
        if context is not None:
            # only ship spans when the supervisor asked for a trace
            reply["spans"] = tracer.export_spans(limit=WORKER_SPAN_LIMIT)
            reply["trace_meta"] = tracer.export_meta()
        try:
            conn.send(["!garbled!"] if corrupt else reply)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One supervised analysis process."""

    _ids = itertools.count(1)

    def __init__(self, context):
        self.id = next(self._ids)
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
            name=f"repro-serve-worker-{self.id}",
        )
        self.process.start()
        child_conn.close()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, graceful: bool = True) -> None:
        """Ask the worker to exit; escalate to SIGKILL if it will not."""
        if graceful and self.alive:
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            self.process.join(timeout=1.0)
        if self.alive:
            self.process.kill()
            self.process.join(timeout=5.0)
        self.conn.close()


class WorkerPool:
    """A fixed-size pool of :class:`_Worker` with per-fault respawn.

    ``submit`` is thread-safe (workers are checked out of a queue), so
    concurrent frontend threads share the pool naturally; the checkout
    wait is bounded by the request's own deadline, surfacing as
    :class:`WorkerHung` rather than an unbounded block.
    """

    def __init__(self, size: int = 2, observer=None):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self.observer = observer
        self.respawns = 0
        self._context = multiprocessing.get_context()
        self._idle: queue.Queue = queue.Queue()
        self._workers: list[_Worker] = []
        self._closed = False
        for _ in range(size):
            self._spawn()

    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        worker = _Worker(self._context)
        self._workers.append(worker)
        self._idle.put(worker)

    def _replace(self, worker: _Worker) -> None:
        """Kill ``worker`` and bring a fresh one up in its place."""
        worker.stop(graceful=False)
        if worker in self._workers:
            self._workers.remove(worker)
        self.respawns += 1
        self._count("serve.pool.respawns")
        if not self._closed:
            self._spawn()

    def _count(self, name: str) -> None:
        obs = self.observer
        if obs is not None and getattr(obs, "enabled", False):
            obs.registry.counter(name).inc()

    # ------------------------------------------------------------------
    def submit(self, job_id, task: str, path: str, options: dict,
               deadline: float, inject: dict | None = None,
               trace: dict | None = None) -> dict:
        """Run one task in a worker; raise :class:`WorkerFailure` on faults.

        ``deadline`` bounds the whole trip: checkout wait + worker time.
        The returned dict is the worker's reply record (``payload`` /
        ``error`` / ``seconds`` / ``metrics``, plus ``spans`` when a
        ``trace`` context was propagated).  Both the reply and any
        raised :class:`WorkerFailure` carry ``queue_seconds`` — the time
        spent waiting for a worker checkout — so the daemon's access
        log can break latency into queue vs. worker time.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        deadline_at = time.monotonic() + deadline
        queue_started = time.perf_counter()
        try:
            worker = self._idle.get(timeout=deadline)
        except queue.Empty:
            failure = WorkerHung(
                f"no worker became available within {deadline:.3f}s"
            )
            failure.queue_seconds = time.perf_counter() - queue_started
            raise failure from None
        queue_seconds = time.perf_counter() - queue_started
        try:
            reply = self._exchange(worker, job_id, task, path, options,
                                   deadline_at, inject, trace)
        except WorkerFailure as failure:
            failure.queue_seconds = queue_seconds
            self._replace(worker)
            raise
        self._idle.put(worker)
        reply["queue_seconds"] = queue_seconds
        return reply

    def _exchange(self, worker, job_id, task, path, options, deadline_at,
                  inject, trace) -> dict:
        try:
            worker.conn.send((job_id, task, path, options,
                              max(0.0, deadline_at - time.monotonic()),
                              inject, trace))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker {worker.id} pipe closed: {exc}") from None
        timeout = max(0.0, deadline_at - time.monotonic())
        if not worker.conn.poll(timeout):
            raise WorkerHung(
                f"worker {worker.id} gave no reply within the deadline"
            )
        try:
            reply = worker.conn.recv()
        except (EOFError, OSError):
            raise WorkerCrashed(
                f"worker {worker.id} died while running {task} on {path}"
            ) from None
        if not isinstance(reply, dict) or reply.get("job") != job_id or \
                "payload" not in reply or "error" not in reply:
            raise WorkerCorrupt(
                f"worker {worker.id} replied with a malformed object"
            )
        return reply

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker (graceful first, then kill)."""
        self._closed = True
        for worker in list(self._workers):
            worker.stop(graceful=True)
        self._workers.clear()
        while True:
            try:
                self._idle.get_nowait()
            except queue.Empty:
                break

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WorkerPool(size={self.size}, respawns={self.respawns}, "
            f"closed={self._closed})"
        )
