"""Command line front end: ``python -m repro.serve``.

Three modes:

* ``--stdin`` (default): serve JSONL requests from stdin, one reply
  per line on stdout, drain on EOF or SIGTERM — the batch/pipe mode CI
  smokes;
* ``--tcp HOST:PORT``: serve the same protocol over a socket
  (``PORT`` 0 binds an ephemeral port, printed on stderr);
* ``--chaos``: run the seeded chaos harness against a fresh daemon and
  exit 0 iff every reply honoured the service contract.

Exit codes: 0 clean (chaos passed / drain clean), 1 chaos violations
or unclean drain, 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.serve.breaker import CircuitBreaker
from repro.serve.daemon import AnalysisDaemon
from repro.serve.frontends import install_signal_handlers, serve_stdin, serve_tcp
from repro.serve.protocol import DEFAULT_DEADLINE
from repro.serve.retry import RetryPolicy

EXIT_OK = 0
EXIT_FAIL = 1
EXIT_USAGE = 2


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-lived fault-isolated analysis daemon: "
        "lint/modecheck/groundness/depthk/failcheck requests as JSONL, "
        "served from a supervised worker pool with retry, poison "
        "quarantine, a circuit breaker and a warm result cache.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--stdin", action="store_true",
                      help="serve JSONL from stdin (the default mode)")
    mode.add_argument("--tcp", metavar="HOST:PORT",
                      help="serve over TCP (PORT 0 = ephemeral, printed "
                      "on stderr)")
    mode.add_argument("--chaos", action="store_true",
                      help="run the seeded chaos harness and exit "
                      "nonzero on any contract violation")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker pool size (default 2)")
    parser.add_argument("--queue-limit", type=int, default=8, metavar="N",
                        help="max in-flight requests before load shedding")
    parser.add_argument("--deadline", type=float, default=DEFAULT_DEADLINE,
                        metavar="SECONDS",
                        help="default per-request deadline")
    parser.add_argument("--retries", type=int, default=3, metavar="N",
                        help="max total attempts per request (1 = no retry)")
    parser.add_argument("--poison-threshold", type=int, default=2, metavar="N",
                        help="fresh-worker kills before a request is "
                        "quarantined")
    parser.add_argument("--summaries", metavar="DIR",
                        help="persistent summary-store directory shared "
                        "by the worker pool: lint/failcheck requests "
                        "reuse per-component analysis summaries across "
                        "files and resubmissions")
    parser.add_argument("--access-log", metavar="FILE",
                        help="append one structured JSONL line per "
                        "request (trace id, outcome, per-phase latency)")
    parser.add_argument("--metrics", metavar="HOST:PORT",
                        help="expose Prometheus text metrics over HTTP "
                        "(PORT 0 = ephemeral, printed on stderr)")
    parser.add_argument("--prop-backend", choices=("bdd", "enum"),
                        default=None,
                        help="Prop (groundness) representation for the "
                        "worker pool: hash-consed ROBDDs (bdd, default) "
                        "or enumerative truth tables (enum); exported as "
                        "REPRO_PROP_BACKEND so workers inherit it")
    parser.add_argument("--no-tracing", action="store_true",
                        help="disable per-request distributed tracing "
                        "(access log and counters stay on)")
    parser.add_argument("--seed", type=int, default=7,
                        help="chaos schedule seed (with --chaos)")
    parser.add_argument("--chaos-requests", type=int, default=24, metavar="N",
                        help="scheduled requests in the chaos run")
    parser.add_argument("--files", nargs="*", metavar="FILE",
                        help="corpus files for --chaos (default: the "
                        "bundled benchmark programs)")
    return parser


def _build_daemon(args) -> AnalysisDaemon:
    return AnalysisDaemon(
        pool_size=args.workers,
        queue_limit=args.queue_limit,
        default_deadline=args.deadline,
        retry=RetryPolicy(max_attempts=max(1, args.retries)),
        breaker=CircuitBreaker(),
        poison_threshold=args.poison_threshold,
        summaries_dir=args.summaries,
        access_log=args.access_log,
        tracing=not args.no_tracing,
    )


def _parse_hostport(text: str, err) -> tuple[str, int] | None:
    host, _, port_text = text.rpartition(":")
    try:
        return host or "127.0.0.1", int(port_text)
    except ValueError:
        print(f"expected HOST:PORT, got {text!r}", file=err)
        return None


def _chaos_paths(args) -> list[str]:
    if args.files:
        return list(args.files)
    from pathlib import Path

    import repro.benchdata as benchdata

    corpus = Path(benchdata.__file__).parent / "prolog"
    return sorted(str(p) for p in corpus.glob("*.pl"))


def main(argv: list[str] | None = None, out=None, err=None) -> int:
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    args = build_arg_parser().parse_args(argv)
    if args.workers < 1 or args.queue_limit < 1:
        print("--workers and --queue-limit must be >= 1", file=err)
        return EXIT_USAGE
    if args.prop_backend is not None:
        # worker processes resolve the Prop backend from the
        # environment, so export before any pool spawns
        import os

        os.environ["REPRO_PROP_BACKEND"] = args.prop_backend

    if args.chaos:
        from repro.serve.chaos import run_chaos

        report = run_chaos(args.seed, _chaos_paths(args),
                           requests=args.chaos_requests)
        print(report.summary(), file=out)
        return EXIT_OK if report.ok else EXIT_FAIL

    stop = threading.Event()
    install_signal_handlers(stop)
    daemon = _build_daemon(args)
    metrics_server = None
    if args.metrics:
        from repro.serve.frontends import start_metrics_server

        address = _parse_hostport(args.metrics, err)
        if address is None:
            return EXIT_USAGE
        metrics_server = start_metrics_server(daemon, *address)
        bound = metrics_server.server_address
        print(f"metrics on http://{bound[0]}:{bound[1]}/metrics",
              file=err, flush=True)
    try:
        if args.tcp:
            address = _parse_hostport(args.tcp, err)
            if address is None:
                return EXIT_USAGE
            serve_tcp(daemon, *address, stop=stop,
                      ready=lambda addr: print(
                          f"listening on {addr[0]}:{addr[1]}",
                          file=err, flush=True))
            return EXIT_OK
        serve_stdin(daemon, stop=stop)
        return EXIT_OK
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()
