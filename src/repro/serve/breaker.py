"""The circuit breaker: trip to degraded serving while the pool flaps.

A classic three-state machine, kept pure over an injected clock so the
transitions are unit-testable without sleeps:

* **closed** — normal operation; worker failures are counted in a
  sliding window of the last ``window`` outcomes, and when the count
  reaches ``failure_threshold`` the breaker opens;
* **open** — pool dispatch is refused outright for ``reset_seconds``;
  the daemon serves *in-process degraded* replies instead (tight
  budget, :mod:`repro.runtime.degrade` ladder) so clients keep getting
  sound answers while the pool is presumed sick;
* **half-open** — after the cooldown, up to ``probe_limit`` requests
  are let through to the pool as probes; ``probe_successes``
  consecutive successes close the breaker, any probe failure reopens
  it (and restarts the cooldown).

The daemon gates on :meth:`allow` and reports every pool outcome via
:meth:`record_success` / :meth:`record_failure`; :meth:`state` is
exported as a gauge (0 closed / 1 half-open / 2 open).
"""

from __future__ import annotations

import time
from collections import deque

CLOSED, HALF_OPEN, OPEN = "closed", "half-open", "open"

#: gauge encoding of the state, exported via the metrics registry
STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Failure-rate gate between the daemon and its worker pool."""

    def __init__(self, failure_threshold: int = 3, window: int = 8,
                 reset_seconds: float = 5.0, probe_successes: int = 2,
                 probe_limit: int = 2, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if window < failure_threshold:
            raise ValueError("window must be >= failure_threshold")
        self.failure_threshold = failure_threshold
        self.window = window
        self.reset_seconds = reset_seconds
        self.probe_successes = probe_successes
        self.probe_limit = probe_limit
        self.clock = clock
        self.state = CLOSED
        self.opened_count = 0
        self._outcomes: deque = deque(maxlen=window)
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        self._probe_wins = 0

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the next request use the worker pool?

        Advances ``open -> half-open`` when the cooldown has elapsed;
        in half-open, admits at most ``probe_limit`` probes at a time.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock() - self._opened_at >= self.reset_seconds:
                self.state = HALF_OPEN
                self._probes_in_flight = 0
                self._probe_wins = 0
            else:
                return False
        if self._probes_in_flight >= self.probe_limit:
            return False
        self._probes_in_flight += 1
        return True

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._probe_wins += 1
            if self._probe_wins >= self.probe_successes:
                self._close()
            return
        self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            self._open()
            return
        self._outcomes.append(False)
        if self.state == CLOSED and self._recent_failures() >= self.failure_threshold:
            self._open()

    # ------------------------------------------------------------------
    def _recent_failures(self) -> int:
        return sum(1 for ok in self._outcomes if not ok)

    def _open(self) -> None:
        self.state = OPEN
        self.opened_count += 1
        self._opened_at = self.clock()
        self._outcomes.clear()
        self._probes_in_flight = 0
        self._probe_wins = 0

    def _close(self) -> None:
        self.state = CLOSED
        self._outcomes.clear()
        self._probes_in_flight = 0
        self._probe_wins = 0

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"recent_failures={self._recent_failures()}, "
            f"opened_count={self.opened_count})"
        )
