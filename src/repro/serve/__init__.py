"""``repro.serve`` — the fault-isolated analysis daemon.

A long-lived service front end over the corpus analysis tasks
(:data:`repro.parallel.corpus.TASKS`): requests come in as JSONL (over
stdin or TCP), run in a supervised pool of worker processes, and come
back as structured replies that are *correct*, *soundly degraded*, or
*clean errors* — never a crash, never a hang past the deadline.

The pieces, each independently testable:

* :mod:`~repro.serve.protocol` — request/reply shapes and error codes;
* :mod:`~repro.serve.pool` — the supervision tree: per-worker pipes,
  deadline kills, respawn;
* :mod:`~repro.serve.retry` / :mod:`~repro.serve.breaker` — bounded
  backoff and the circuit breaker, pure state machines;
* :mod:`~repro.serve.cache` — warm results keyed by clause-set variant
  hashes with SCC-condensation-aware invalidation;
* :mod:`~repro.serve.daemon` — the dispatch path tying them together;
* :mod:`~repro.serve.telemetry` — live telemetry: the structured
  access log, the stitched-trace store, per-request tracing plumbing
  and the Prometheus text exposition;
* :mod:`~repro.serve.chaos` — the seeded chaos harness enforcing the
  service contract end to end.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import ResultCache, fingerprint_program
from repro.serve.chaos import ChaosReport, run_chaos
from repro.serve.daemon import AnalysisDaemon
from repro.serve.pool import (
    WorkerCorrupt,
    WorkerCrashed,
    WorkerFailure,
    WorkerHung,
    WorkerPool,
)
from repro.serve.protocol import (
    ADMIN_TASKS,
    ERROR_CODES,
    ProtocolError,
    Request,
    check_reply,
    error_reply,
    ok_reply,
    parse_request,
    parse_request_line,
)
from repro.serve.retry import RetryPolicy, RetrySession
from repro.serve.telemetry import (
    AccessLog,
    RequestTelemetry,
    TraceStore,
    render_prometheus,
)

__all__ = [
    "ADMIN_TASKS",
    "AccessLog",
    "AnalysisDaemon",
    "ChaosReport",
    "CircuitBreaker",
    "ERROR_CODES",
    "ProtocolError",
    "Request",
    "RequestTelemetry",
    "ResultCache",
    "RetryPolicy",
    "RetrySession",
    "TraceStore",
    "WorkerCorrupt",
    "WorkerCrashed",
    "WorkerFailure",
    "WorkerHung",
    "WorkerPool",
    "check_reply",
    "error_reply",
    "fingerprint_program",
    "ok_reply",
    "parse_request",
    "parse_request_line",
    "render_prometheus",
    "run_chaos",
]
