"""Daemon frontends: stdin-JSONL and TCP-socket framing.

Both frontends are thin: read one JSON request per line, write one
JSON reply per line, delegate everything else to
:meth:`~repro.serve.daemon.AnalysisDaemon.handle_line`.  Shutdown is
cooperative — :func:`install_signal_handlers` arranges for SIGTERM and
SIGINT to set the stop event, after which the stdin loop finishes the
current request and drains, and the TCP server stops accepting and
drains (in-flight connections get their replies first).
"""

from __future__ import annotations

import signal
import socketserver
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.protocol import dump_reply
from repro.serve.telemetry import PROMETHEUS_CONTENT_TYPE, render_prometheus


def install_signal_handlers(stop: threading.Event, signals=(signal.SIGTERM,
                                                            signal.SIGINT)):
    """Route ``signals`` to ``stop.set()``; returns the previous handlers."""
    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(signum, lambda *_: stop.set())
    return previous


def serve_stdin(daemon, in_stream=None, out_stream=None,
                stop: threading.Event | None = None) -> int:
    """Serve JSONL requests from ``in_stream`` until EOF or ``stop``.

    Returns the number of requests served.  The daemon is drained on
    the way out (clean SIGTERM semantics: the reply for the in-flight
    request is written before exit).
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    served = 0
    try:
        for line in in_stream:
            if stop is not None and stop.is_set():
                break
            if not line.strip():
                continue
            reply = daemon.handle_line(line)
            out_stream.write(dump_reply(reply) + "\n")
            out_stream.flush()
            served += 1
    finally:
        daemon.drain()
    return served


def start_metrics_server(daemon, host: str = "127.0.0.1", port: int = 0):
    """Expose the daemon's metrics over HTTP in a background thread.

    ``GET /metrics`` (or ``/``) renders the registry snapshot in the
    Prometheus text format — the scrape endpoint behind the CLI's
    ``--metrics HOST:PORT``.  Returns the running server; its bound
    address is ``server.server_address`` and :meth:`shutdown` stops it.
    """

    class _MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):
            if self.path.split("?", 1)[0].rstrip("/") not in ("", "/metrics"):
                self.send_error(404, "only /metrics is served here")
                return
            snapshot = daemon.observer.registry.snapshot()
            body = render_prometheus(snapshot).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # the access log is the daemon's own
            pass

    server = ThreadingHTTPServer((host, port), _MetricsHandler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.1}, daemon=True,
                              name="repro-serve-metrics")
    thread.start()
    return server


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self):
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            reply = self.server.daemon.handle_line(line)
            self.wfile.write((dump_reply(reply) + "\n").encode("utf-8"))
            self.wfile.flush()


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve_tcp(daemon, host: str = "127.0.0.1", port: int = 0,
              stop: threading.Event | None = None,
              ready=None) -> None:
    """Serve JSONL requests over TCP until ``stop`` is set.

    ``port=0`` binds an ephemeral port; ``ready`` (a callable) receives
    the bound ``(host, port)`` once listening — used by tests and by
    the CLI to print the address.  Blocks until stopped, then drains.
    """
    stop = stop if stop is not None else threading.Event()
    with _Server((host, port), _RequestHandler) as server:
        server.daemon = daemon
        if ready is not None:
            ready(server.server_address)
        waiter = threading.Thread(target=lambda: (stop.wait(),
                                                  server.shutdown()),
                                  daemon=True)
        waiter.start()
        try:
            server.serve_forever(poll_interval=0.05)
        finally:
            stop.set()
            waiter.join(timeout=1.0)
            daemon.drain()
