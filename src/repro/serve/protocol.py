"""The daemon's wire protocol: JSONL requests, structured replies.

One request per line, one reply per line, both JSON objects — the same
shape over stdin and over a TCP socket, and the same dicts the
in-process :meth:`~repro.serve.daemon.AnalysisDaemon.handle` path
accepts and returns, so everything above the framing layer is testable
without any I/O.

A request names a corpus task (:data:`repro.parallel.corpus.TASKS`)
and a file path::

    {"id": 7, "task": "lint", "path": "prog.pl",
     "options": {"query": "main(X)"}, "deadline": 5.0}

A reply always carries the request ``id``, an ``ok`` flag, and exactly
one of ``payload`` (success) or ``error`` (a structured object with a
``code`` from :data:`ERROR_CODES` — never a bare traceback)::

    {"id": 7, "ok": true, "payload": {...}, "degraded": false,
     "cached": true, "attempts": 1, "seconds": 0.002}

The failure contract the chaos suite enforces is expressed here:
:func:`check_reply` accepts exactly three outcomes — a well-formed
success payload, a well-formed *degraded* success (the analysis ran
down the :mod:`repro.runtime.degrade` ladder, still sound), or a
structured error with a known code.  Anything else is a protocol bug.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: every error code a reply may carry (the client-visible taxonomy)
ERROR_CODES = (
    "bad-request",      # malformed JSON / missing or ill-typed fields
    "unknown-task",     # task name outside repro.parallel.corpus.TASKS
    "analysis-error",   # the analysis itself raised (syntax error, bad file)
    "deadline",         # request deadline exhausted (including by retries)
    "worker-crash",     # worker died and bounded retry did not recover
    "worker-corrupt",   # worker replied garbage and retry did not recover
    "poisoned",         # request quarantined: it kills fresh workers
    "overloaded",       # load shed: bounded request queue is full
    "shutting-down",    # daemon is draining; resubmit elsewhere
    "not-found",        # admin lookup missed (e.g. unknown trace id)
    "internal",         # supervisor-side bug guard (never expected)
)

#: admin request types answered by the supervisor itself — they never
#: touch the worker pool, the cache or the quarantine
ADMIN_TASKS = ("stats", "trace", "metrics")

#: request deadline applied when the client does not send one
DEFAULT_DEADLINE = 30.0


class ProtocolError(ValueError):
    """A request line that cannot be turned into a :class:`Request`.

    ``code`` is the structured error code the reply should carry
    (``bad-request`` for shape problems, ``unknown-task`` for a task
    name outside the registry).
    """

    def __init__(self, message: str, code: str = "bad-request"):
        super().__init__(message)
        self.code = code


@dataclass
class Request:
    """One validated analysis request."""

    id: object
    task: str
    path: str
    options: dict = field(default_factory=dict)
    deadline: float = DEFAULT_DEADLINE
    #: process-fault spec forwarded to the worker (chaos testing only)
    inject: dict | None = None
    #: caller-supplied trace context (``{"trace_id", "span_id"}``) — the
    #: daemon adopts it so the client's trace covers the daemon's spans
    trace: dict | None = None

    @property
    def is_admin(self) -> bool:
        return self.task in ADMIN_TASKS

    @property
    def key(self) -> tuple:
        """Identity for quarantine/caching: task + path + options.

        The ``id`` and the injected fault are excluded on purpose: the
        same logical request resubmitted under a new id must hit the
        same quarantine entry and the same cache slot.
        """
        return (self.task, self.path, _freeze(self.options))


def _freeze(value):
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def parse_request(data, known_tasks) -> Request:
    """Validate one decoded request object (raises :class:`ProtocolError`)."""
    if not isinstance(data, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(data).__name__}")
    task = data.get("task")
    if not isinstance(task, str):
        raise ProtocolError("request needs a string 'task' field")
    if task not in known_tasks and task not in ADMIN_TASKS:
        raise ProtocolError(
            f"unknown task {task!r}; have {sorted(known_tasks)} "
            f"and admin tasks {sorted(ADMIN_TASKS)}",
            code="unknown-task",
        )
    path = data.get("path")
    if task in ADMIN_TASKS:
        # admin requests address the daemon itself, not a file
        path = path if isinstance(path, str) else ""
    elif not isinstance(path, str) or not path:
        raise ProtocolError("request needs a non-empty string 'path' field")
    options = data.get("options", {})
    if options is None:
        options = {}
    if not isinstance(options, dict):
        raise ProtocolError("'options' must be a JSON object")
    deadline = data.get("deadline", DEFAULT_DEADLINE)
    if not isinstance(deadline, (int, float)) or isinstance(deadline, bool) \
            or deadline <= 0:
        raise ProtocolError("'deadline' must be a positive number of seconds")
    inject = data.get("inject")
    if inject is not None and not isinstance(inject, dict):
        raise ProtocolError("'inject' must be a JSON object when present")
    trace = data.get("trace")
    if trace is not None and not isinstance(trace, dict):
        raise ProtocolError("'trace' must be a JSON object when present")
    return Request(
        id=data.get("id"),
        task=task,
        path=path,
        options=options,
        deadline=float(deadline),
        inject=inject,
        trace=trace,
    )


def parse_request_line(line: str, known_tasks) -> Request:
    """Decode and validate one JSONL request line."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    return parse_request(data, known_tasks)


# ----------------------------------------------------------------------
# Replies


def ok_reply(request_id, payload: dict, *, degraded: bool = False,
             cached: bool = False, attempts: int = 1,
             seconds: float = 0.0) -> dict:
    """A success (possibly degraded) reply."""
    return {
        "id": request_id,
        "ok": True,
        "payload": payload,
        "degraded": degraded,
        "cached": cached,
        "attempts": attempts,
        "seconds": seconds,
    }


def error_reply(request_id, code: str, message: str, *, attempts: int = 0,
                seconds: float = 0.0, **detail) -> dict:
    """A structured failure reply; ``code`` must be in :data:`ERROR_CODES`."""
    assert code in ERROR_CODES, f"unknown error code {code!r}"
    error = {"code": code, "message": message}
    if detail:
        error.update(detail)
    return {
        "id": request_id,
        "ok": False,
        "error": error,
        "degraded": False,
        "cached": False,
        "attempts": attempts,
        "seconds": seconds,
    }


def check_reply(reply) -> str:
    """Classify a reply as ``"ok"``, ``"degraded"`` or ``"error"``.

    Raises :class:`ProtocolError` for anything outside the contract —
    this is the single predicate the chaos suite holds every reply to.
    """
    if not isinstance(reply, dict):
        raise ProtocolError(f"reply must be a dict, got {type(reply).__name__}")
    missing = {"id", "ok", "degraded", "cached", "attempts", "seconds"} - set(reply)
    if missing:
        raise ProtocolError(f"reply missing fields {sorted(missing)}")
    if reply["ok"]:
        if not isinstance(reply.get("payload"), dict):
            raise ProtocolError("ok reply must carry a dict payload")
        return "degraded" if reply["degraded"] else "ok"
    error = reply.get("error")
    if not isinstance(error, dict) or error.get("code") not in ERROR_CODES:
        raise ProtocolError(f"error reply must carry a known code, got {error!r}")
    if not isinstance(error.get("message"), str):
        raise ProtocolError("error reply must carry a string message")
    return "error"


def dump_reply(reply: dict) -> str:
    """One JSONL line for ``reply`` (stable key order)."""
    return json.dumps(reply, sort_keys=True, default=str)
