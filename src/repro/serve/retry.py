"""Bounded retry with exponential backoff and deterministic jitter.

The policy is a pure state machine over an injected clock and sleeper:
``delay(attempt)`` is a function of the policy parameters and the
attempt number alone (jitter comes from a PRNG seeded per
:meth:`RetryPolicy.session`, not from wall time), so unit tests run
with a fake clock and zero real sleeping, and two daemons configured
alike back off identically.

Budget awareness is the part that matters for a serving path: a retry
*session* is opened with the request's remaining deadline, and
:meth:`~RetrySession.backoff` refuses to sleep past it — a request
never blows its deadline inside the retry loop, it gets a structured
``deadline`` error instead (the over-approximation stance: a bounded,
honest failure beats an unbounded wait).
"""

from __future__ import annotations

import random
import time


class RetryPolicy:
    """Parameters for bounded retry: attempts, backoff curve, jitter.

    ``max_attempts`` counts *total* tries (1 = no retry).  The delay
    before retry ``n`` (1-based) is ``base * multiplier**(n-1)``,
    capped at ``max_delay``, then stretched by up to ``jitter``
    fraction using the session's seeded PRNG.
    """

    def __init__(self, max_attempts: int = 3, base: float = 0.05,
                 multiplier: float = 2.0, max_delay: float = 2.0,
                 jitter: float = 0.25):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base = base
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry ``attempt`` (1-based, pre-jitter if no rng)."""
        delay = min(self.max_delay, self.base * self.multiplier ** (attempt - 1))
        if rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def session(self, budget_seconds: float | None = None, seed: int = 0,
                clock=time.monotonic, sleep=time.sleep) -> "RetrySession":
        """A per-request session over this policy (deterministic in seed)."""
        return RetrySession(self, budget_seconds, seed, clock, sleep)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, base={self.base}, "
            f"multiplier={self.multiplier}, max_delay={self.max_delay}, "
            f"jitter={self.jitter})"
        )


class RetrySession:
    """Retry bookkeeping for one request.

    The driving loop is::

        while True:
            try:
                return do_work(timeout=session.remaining())
            except TransientError:
                if not session.backoff():
                    break   # attempts or deadline exhausted
    """

    def __init__(self, policy: RetryPolicy, budget_seconds, seed, clock, sleep):
        self.policy = policy
        self.clock = clock
        self.sleep = sleep
        self.attempt = 1
        self.slept = 0.0
        self._rng = random.Random(seed)
        self._started = clock()
        self._deadline_at = (
            None if budget_seconds is None else self._started + budget_seconds
        )

    def remaining(self) -> float | None:
        """Seconds left in the request budget (None = unbudgeted)."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - self.clock())

    def backoff(self) -> bool:
        """Sleep before the next try; False when retry must stop.

        Stops when attempts are exhausted or when the backoff delay
        would not fit in the remaining request budget (sleeping and
        then failing on a dead deadline helps nobody).
        """
        if self.attempt >= self.policy.max_attempts:
            return False
        delay = self.policy.delay(self.attempt, self._rng)
        remaining = self.remaining()
        if remaining is not None and delay >= remaining:
            return False
        self.attempt += 1
        self.slept += delay
        if delay > 0:
            self.sleep(delay)
        return True

    def __repr__(self) -> str:
        return f"RetrySession(attempt={self.attempt}, slept={self.slept:.3f}s)"
