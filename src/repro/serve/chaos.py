"""Deterministic chaos testing for the analysis daemon.

:func:`run_chaos` drives an :class:`~repro.serve.daemon.AnalysisDaemon`
through a seeded fault schedule — worker aborts, hangs past the
deadline, corrupt replies (dealt by
:class:`~repro.runtime.faultinject.ProcessFaultPlan`), malformed
requests, a persistent poison request, and a concurrent burst against
the bounded queue — and holds every reply to the service contract:

* well-formed (:func:`~repro.serve.protocol.check_reply`): a success
  payload, a *degraded* success, or a structured error with a known
  code — never a raw traceback, never a hang, never a dead daemon;
* **correct**: a non-degraded success payload must equal the golden
  in-process result for the same (task, file, options), timings aside
  — retries, cache hits and pool respawns must not change answers;
* **bounded**: each reply lands within the request deadline plus a
  fixed supervision grace (the time to detect a hang, kill the worker
  and answer), so no request can wedge past its deadline;
* **observable**: every reply carries a ``trace_id``; when the daemon
  stored a stitched trace for it, that trace must be one well-formed
  tree under the reply's id (kills included — fabricated partial
  worker spans and all), and every ``trace_id`` must map to exactly
  one access-log line.

Violations are collected, not raised, so one report shows everything a
schedule shook loose; the same seed always produces the same schedule.
"""

from __future__ import annotations

import threading
import time

from repro.obs.distributed import span_tree_is_wellformed
from repro.parallel.corpus import TASKS
from repro.runtime.faultinject import ProcessFaultPlan
from repro.serve.breaker import CircuitBreaker
from repro.serve.daemon import AnalysisDaemon
from repro.serve.protocol import ProtocolError, check_reply
from repro.serve.retry import RetryPolicy

#: seconds of supervision overhead allowed on top of a request deadline
#: (hang detection + worker kill + respawn + structured reply)
GRACE_SECONDS = 3.0


#: payload keys that legitimately vary between runs of the same
#: analysis: wall-clock timings, and table-space bytes (warm memo
#: caches change object sizes without changing any answer)
VOLATILE_KEYS = frozenset({"timings", "table_space"})


def strip_volatile(value):
    """``value`` with every volatile entry removed (deep copy)."""
    if isinstance(value, dict):
        return {k: strip_volatile(v) for k, v in value.items()
                if k not in VOLATILE_KEYS}
    if isinstance(value, list):
        return [strip_volatile(v) for v in value]
    return value


class ChaosReport:
    """Outcome tally plus contract violations for one chaos run."""

    def __init__(self, seed: int):
        self.seed = seed
        self.outcomes: dict[str, int] = {}
        self.error_codes: dict[str, int] = {}
        self.violations: list[str] = []
        self.requests = 0
        self.cache_hits = 0
        self.drain_clean = False
        self.trace_ids: list[str] = []
        self.stitched_traces = 0

    @property
    def ok(self) -> bool:
        return not self.violations and self.drain_clean

    def tally(self, outcome: str, reply: dict) -> None:
        self.requests += 1
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if outcome == "error":
            code = reply["error"]["code"]
            self.error_codes[code] = self.error_codes.get(code, 0) + 1
        if reply.get("cached"):
            self.cache_hits += 1

    def violation(self, message: str) -> None:
        self.violations.append(message)

    def summary(self) -> str:
        lines = [
            f"chaos seed={self.seed}: {self.requests} requests, "
            f"outcomes={dict(sorted(self.outcomes.items()))}, "
            f"error_codes={dict(sorted(self.error_codes.items()))}, "
            f"cache_hits={self.cache_hits}, "
            f"stitched_traces={self.stitched_traces}, "
            f"drain_clean={self.drain_clean}",
        ]
        for violation in self.violations:
            lines.append(f"VIOLATION: {violation}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


class _Golden:
    """Memoized in-process reference results (fault-free, unbudgeted)."""

    def __init__(self):
        self._results: dict = {}

    def payload(self, task: str, path: str, options: dict):
        key = (task, path, tuple(sorted(options.items())))
        if key not in self._results:
            try:
                self._results[key] = strip_volatile(TASKS[task](path, dict(options)))
            except Exception as exc:  # noqa: BLE001 — golden may legitimately fail
                self._results[key] = f"error:{type(exc).__name__}"
        return self._results[key]


def run_chaos(
    seed: int,
    paths: list[str],
    requests: int = 24,
    tasks: tuple = ("lint", "groundness", "depthk"),
    deadline: float = 2.0,
    burst: int = 6,
    rates: dict | None = None,
) -> ChaosReport:
    """Drive one daemon through a seeded fault schedule; return the report."""
    report = ChaosReport(seed)
    plan = ProcessFaultPlan(seed, rates=rates, hang_seconds=600.0)
    golden = _Golden()
    daemon = AnalysisDaemon(
        pool_size=2,
        queue_limit=2,
        default_deadline=deadline,
        retry=RetryPolicy(max_attempts=3, base=0.02, max_delay=0.2),
        breaker=CircuitBreaker(failure_threshold=4, window=8,
                               reset_seconds=0.5),
        poison_threshold=2,
    )
    lint_options = {"failcheck": False, "modes": False}
    try:
        for index in range(requests):
            task = tasks[index % len(tasks)]
            path = paths[index % len(paths)]
            options = lint_options if task == "lint" else {}
            data = {"id": index, "task": task, "path": path,
                    "options": options, "deadline": deadline}
            kind = None
            if index and index % 11 == 0:
                # malformed request: bogus task name
                data["task"] = "no-such-task"
            elif index and index % 7 == 0:
                # the poison request: one logical request (one key) that
                # kills every fresh worker it reaches; resubmissions must
                # hit the quarantine entry, not fresh workers
                data["task"] = "groundness"
                data["path"] = paths[0]
                data["options"] = {"chaos": "poison"}
                data["inject"] = {"kind": "abort", "every": True}
                kind = "poison"
            else:
                spec = plan.deal(index)
                if spec is not None:
                    data["inject"] = spec
                    kind = spec["kind"]
            _fire(daemon, data, kind, golden, report, deadline)
        _burst(daemon, paths, burst, deadline, report)
    finally:
        report.drain_clean = daemon.drain(timeout=15.0)
    _check_access_log(daemon, report)
    # post-drain: intake must refuse cleanly, not crash
    reply = daemon.handle({"id": "late", "task": "lint", "path": paths[0],
                           "options": lint_options, "deadline": deadline})
    if reply["ok"] or reply["error"]["code"] != "shutting-down":
        report.violation(f"post-drain request not refused cleanly: {reply!r}")
    return report


def _fire(daemon, data, fault_kind, golden, report, deadline) -> None:
    started = time.monotonic()
    reply = daemon.handle(dict(data))
    elapsed = time.monotonic() - started
    _check(reply, data, fault_kind, golden, report)
    _check_trace(daemon, reply, data.get("id"), report)
    if elapsed > deadline + GRACE_SECONDS:
        report.violation(
            f"request {data.get('id')} took {elapsed:.2f}s, past its "
            f"{deadline:.2f}s deadline plus {GRACE_SECONDS:.1f}s grace"
        )


def _check(reply, data, fault_kind, golden, report) -> None:
    try:
        outcome = check_reply(reply)
    except ProtocolError as exc:
        report.tally("malformed", {"error": {"code": "?"}, "cached": False})
        report.violation(f"request {data.get('id')}: ill-formed reply: {exc}")
        return
    report.tally(outcome, reply)
    if data.get("task") not in TASKS:
        if outcome != "error" or reply["error"]["code"] != "unknown-task":
            report.violation(
                f"request {data.get('id')}: bogus task must be refused "
                f"with unknown-task, got {reply!r}"
            )
        return
    if fault_kind == "poison":
        # a poison request must end quarantined, not retried forever;
        # "degraded" is also within contract — it means the breaker was
        # already open, so the request went to the in-process ladder
        # where the modeled *worker* fault has nothing to kill
        if outcome == "degraded":
            return
        if outcome != "error" or reply["error"]["code"] not in (
                "poisoned", "worker-crash"):
            report.violation(
                f"request {data.get('id')}: poison request must yield "
                f"poisoned/worker-crash (or degraded under an open "
                f"breaker), got {reply!r}"
            )
        return
    if outcome == "ok":
        expected = golden.payload(data["task"], data["path"],
                                  data.get("options") or {})
        if strip_volatile(reply["payload"]) != expected:
            report.violation(
                f"request {data.get('id')}: non-degraded payload differs "
                f"from the golden in-process result"
            )


def _check_trace(daemon, reply, request_id, report) -> None:
    """Hold one reply to the observability contract."""
    trace_id = reply.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        report.violation(f"request {request_id}: reply carries no trace_id")
        return
    report.trace_ids.append(trace_id)
    spans = daemon.traces.get(trace_id)
    if spans is None:
        # pre-dispatch rejection (or tracing off): no stored trace owed
        return
    report.stitched_traces += 1
    if not span_tree_is_wellformed(spans):
        report.violation(
            f"request {request_id}: stitched trace {trace_id} is not a "
            f"well-formed span tree")
    foreign = [s for s in spans if s.get("trace_id") != trace_id]
    if foreign:
        report.violation(
            f"request {request_id}: trace {trace_id} contains spans from "
            f"{len(foreign)} other trace(s)")


def _check_access_log(daemon, report) -> None:
    """Every reply's trace_id must map to exactly one access-log line."""
    counts: dict = {}
    for entry in daemon.access_log.recent():
        counts[entry.get("trace_id")] = counts.get(entry.get("trace_id"), 0) + 1
    for trace_id in report.trace_ids:
        lines = counts.get(trace_id, 0)
        if lines != 1:
            report.violation(
                f"trace {trace_id} has {lines} access-log line(s), want "
                f"exactly one")


def _burst(daemon, paths, burst, deadline, report) -> None:
    """Concurrent fire at a tiny queue: sheds must be clean, rest correct."""
    if burst <= 0:
        return
    replies = [None] * burst
    lint_options = {"failcheck": False, "modes": False}

    def one(slot):
        replies[slot] = daemon.handle({
            "id": f"burst-{slot}", "task": "lint",
            "path": paths[slot % len(paths)], "options": lint_options,
            "deadline": deadline,
        })

    threads = [threading.Thread(target=one, args=(slot,)) for slot in range(burst)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=deadline + GRACE_SECONDS + 5.0)
        if thread.is_alive():
            report.violation("burst request hung past deadline + grace")
    for slot, reply in enumerate(replies):
        if reply is None:
            continue
        try:
            outcome = check_reply(reply)
        except ProtocolError as exc:
            report.violation(f"burst-{slot}: ill-formed reply: {exc}")
            continue
        report.tally(outcome, reply)
        _check_trace(daemon, reply, f"burst-{slot}", report)
        if outcome == "error" and reply["error"]["code"] not in (
                "overloaded", "deadline"):
            report.violation(
                f"burst-{slot}: unexpected error code {reply['error']['code']}"
            )
