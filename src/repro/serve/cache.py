"""Warm result cache keyed by clause-set hashes, SCC-aware invalidation.

What makes the daemon worth keeping alive: a resubmitted file whose
clauses did not change is answered from memory.  Keys are *semantic*,
not textual — each predicate's clause list is fingerprinted by the
:func:`~repro.terms.variant.variant_key` of its clauses, so renaming
variables, reordering predicates, or editing comments does not miss
the cache (the same variant discipline XSB uses for its call tables).

Invalidation is condensation-aware.  A file's fingerprint is kept
per-SCC-component of its dependency graph; on resubmission the cache
computes the *dirty set* — components whose own clauses changed,
closed under the reverse condensation edges (every component that can
call into a dirty one is dirty too, because analysis results flow
callee-to-caller).  Today a non-empty dirty set still re-analyzes the
whole file (results are whole-file payloads), but the probe reports
exactly which components forced it — the invalidation half of the
ROADMAP's incremental re-evaluation item, ready for per-component
result reuse to plug into — and a *clean* resubmission (edits confined
to comments/formatting, or a textual change that is a variant) is a
full hit with zero analysis work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.depgraph import DependencyGraph
from repro.prolog.program import Program
from repro.terms.term import Struct
from repro.terms.variant import variant_key

#: component identity stable across edits: the set of its predicates
ComponentId = frozenset


@dataclass
class Fingerprint:
    """The cache key material of one parsed program."""

    #: component id -> hashable fingerprint of its predicates' clauses
    components: dict
    #: component id -> component ids it depends on (callee direction)
    depends_on: dict

    @property
    def whole(self) -> tuple:
        """One hashable key for the entire clause set."""
        return tuple(sorted(
            (sorted(comp), key) for comp, key in self.components.items()
        ))


def fingerprint_program(program: Program) -> Fingerprint:
    """Per-component clause fingerprints plus the condensation edges."""
    graph = DependencyGraph(program)
    sccs = graph.sccs()
    ids = [ComponentId(component) for component in sccs]
    components = {}
    for cid, component in zip(ids, sccs):
        keys = []
        for indicator in sorted(component):
            for clause in program.clauses_for(indicator):
                keys.append(variant_key(Struct(":-", (clause.head, clause.body))))
        components[cid] = tuple(keys)
    edges = graph.condensation_edges()
    depends_on = {
        ids[caller]: {ids[callee] for callee in callees}
        for caller, callees in edges.items()
    }
    return Fingerprint(components=components, depends_on=depends_on)


@dataclass
class CacheProbe:
    """Outcome of one cache lookup."""

    hit: bool
    payload: dict | None = None
    fingerprint: Fingerprint | None = None
    #: components whose own clauses changed (empty on a hit or cold miss)
    changed: list = field(default_factory=list)
    #: changed + everything condensation-upstream of it
    dirty: list = field(default_factory=list)

    @property
    def partial(self) -> bool:
        """A warm miss: some components were reusable in principle."""
        return (not self.hit and self.fingerprint is not None
                and bool(self.dirty)
                and len(self.dirty) < len(self.fingerprint.components))


class ResultCache:
    """Per-(task, path, options) result cache with LRU-ish eviction.

    One entry per request key (see
    :attr:`repro.serve.protocol.Request.key`); ``max_entries`` bounds
    memory, evicting the least recently used entry.  The caller parses
    the file and passes the :class:`Program` — parsing stays on the
    supervisor side, analysis stays in the workers.
    """

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._entries: dict = {}  # key -> (Fingerprint, payload)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def probe(self, key, program: Program) -> CacheProbe:
        """Look ``key`` up against the current clause set of ``program``."""
        fingerprint = fingerprint_program(program)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return CacheProbe(hit=False, fingerprint=fingerprint)
        old, payload = entry
        if old.whole == fingerprint.whole:
            self.hits += 1
            # refresh recency
            self._entries.pop(key)
            self._entries[key] = (old, payload)
            return CacheProbe(hit=True, payload=payload, fingerprint=fingerprint)
        self.misses += 1
        changed = [
            cid for cid, comp_key in fingerprint.components.items()
            if old.components.get(cid) != comp_key
        ]
        return CacheProbe(
            hit=False,
            fingerprint=fingerprint,
            changed=sorted(changed, key=sorted),
            dirty=sorted(dirty_components(fingerprint, changed), key=sorted),
        )

    def store(self, key, probe: CacheProbe, payload: dict) -> None:
        """Remember ``payload`` for ``key`` under the probe's fingerprint."""
        if probe.fingerprint is None:
            return
        self._entries.pop(key, None)
        self._entries[key] = (probe.fingerprint, payload)
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))

    def invalidate(self, path: str) -> int:
        """Drop every entry for ``path`` (any task/options); returns count."""
        stale = [k for k in self._entries if k[1] == path]
        for k in stale:
            self._entries.pop(k)
        return len(stale)


def dirty_components(fingerprint: Fingerprint, changed) -> set:
    """``changed`` closed under reverse dependency (caller) edges.

    Analysis facts flow callee-to-caller, so a component is dirty when
    any component it (transitively) depends on changed — plus any
    component that is itself new or edited.
    """
    changed = set(changed)
    callers_of: dict = {}
    for caller, callees in fingerprint.depends_on.items():
        for callee in callees:
            callers_of.setdefault(callee, set()).add(caller)
    dirty = set(changed)
    stack = list(changed)
    while stack:
        component = stack.pop()
        for caller in callers_of.get(component, ()):
            if caller not in dirty:
                dirty.add(caller)
                stack.append(caller)
    return dirty
