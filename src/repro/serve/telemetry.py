"""Live telemetry for the daemon: access log, trace store, exposition.

Three pieces, all zero-dependency and individually testable:

* :class:`AccessLog` — one structured JSONL line per request (trace id,
  task, outcome, cache/breaker/retry disposition, per-phase latency
  breakdown), written to a file when one is configured and always
  retained in a bounded in-memory ring for the ``stats`` admin request;
* :class:`TraceStore` — the last N stitched request traces keyed by
  ``trace_id``, serving the ``trace`` admin request;
* :func:`render_prometheus` — the text exposition of a
  :meth:`~repro.obs.registry.MetricsRegistry.snapshot` (counters,
  gauges, timers-as-summaries, fixed-bucket histograms), served over
  ``--metrics HOST:PORT`` and the ``metrics`` admin request.

:class:`RequestTelemetry` is the per-request bundle the daemon threads
through its dispatch path: a private :class:`~repro.obs.trace.Tracer`
(one per request, so concurrent frontend threads never interleave
spans), the accumulating phase-latency dict, and the worker span sets
waiting to be stitched.  With ``enabled=False`` every method is a
no-op-priced stub — the tracing-off ablation measures exactly this
switch.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager, nullcontext

from repro.obs.distributed import (
    TraceContext,
    new_trace_id,
    partial_worker_span,
    remap_spans,
)
from repro.obs.trace import Tracer

#: content type of the Prometheus text exposition format
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: per-request span-ring capacity (a request path is a handful of
#: spans; worker spans are stitched in addition, outside the ring)
REQUEST_TRACE_CAPACITY = 512

#: the latency phases an access-log line breaks a request into
PHASES = ("queue", "cache", "dispatch", "worker", "retry_sleep")


class AccessLog:
    """A bounded, thread-safe structured request log.

    ``destination`` is a path (opened append, line-buffered flushes), a
    writable text file object, or ``None`` (in-memory ring only — the
    ``stats`` request still sees tallies and recent lines).
    """

    def __init__(self, destination=None, capacity: int = 1024):
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._count = 0
        self._outcomes: dict[str, int] = {}
        self._owns_handle = False
        if destination is None:
            self._handle = None
        elif hasattr(destination, "write"):
            self._handle = destination
        else:
            self._handle = open(destination, "a", encoding="utf-8")
            self._owns_handle = True

    def log(self, entry: dict) -> None:
        """Record one request entry (and write its JSONL line, if any)."""
        with self._lock:
            self._count += 1
            outcome = entry.get("outcome", "?")
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1
            self._ring.append(entry)
            if self._handle is not None:
                self._handle.write(json.dumps(entry, sort_keys=True,
                                              default=str) + "\n")
                self._handle.flush()

    def recent(self, limit: int | None = None) -> list[dict]:
        with self._lock:
            entries = list(self._ring)
        return entries if limit is None else entries[-limit:]

    def stats(self) -> dict:
        with self._lock:
            return {
                "logged": self._count,
                "retained": len(self._ring),
                "outcomes": dict(sorted(self._outcomes.items())),
            }

    def close(self) -> None:
        if self._owns_handle and self._handle is not None:
            self._handle.close()
            self._handle = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class TraceStore:
    """The last ``capacity`` stitched traces, keyed by trace id."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self.evicted = 0
        self._traces: OrderedDict[str, list] = OrderedDict()
        self._lock = threading.Lock()

    def put(self, trace_id: str, spans: list) -> None:
        with self._lock:
            if trace_id in self._traces:
                self._traces.move_to_end(trace_id)
            self._traces[trace_id] = spans
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self.evicted += 1

    def get(self, trace_id: str) -> list | None:
        with self._lock:
            return self._traces.get(trace_id)

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __repr__(self) -> str:
        return f"TraceStore({len(self)} traces, evicted={self.evicted})"


class RequestTelemetry:
    """One request's tracing + latency bookkeeping, threaded end to end.

    The daemon builds one per request; the dispatch path records phase
    timings (:meth:`phase`), spans (:meth:`span`), worker span sets
    (:meth:`adopt_worker_spans`) and lost-worker faults
    (:meth:`worker_lost`); :meth:`stitched_spans` assembles the single
    well-formed trace after the request span closes.
    """

    __slots__ = ("enabled", "trace_id", "parent_span_id", "tracer",
                 "phases", "_grafts", "_faults")

    def __init__(self, enabled: bool = True, trace: dict | None = None,
                 capacity: int = REQUEST_TRACE_CAPACITY):
        context = TraceContext.from_wire(trace) if trace else None
        self.trace_id = context.trace_id if context else new_trace_id()
        self.parent_span_id = context.span_id if context else None
        self.enabled = enabled
        self.tracer = (
            Tracer(capacity=capacity, trace_id=self.trace_id)
            if enabled else None
        )
        self.phases: dict[str, float] = {}
        self._grafts: list = []   # (parent span id, worker span dicts)
        self._faults: list = []   # (parent span id, kind, start, end, attempt)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        if not self.enabled:
            return nullcontext()
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        if self.enabled:
            self.tracer.event(name, **attrs)

    def add_phase(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    @contextmanager
    def phase(self, name: str, span_name: str | None = None, **attrs):
        """Time a block into ``phases[name]`` (and a span when named)."""
        started = time.perf_counter()
        try:
            if span_name is not None and self.enabled:
                with self.tracer.span(span_name, **attrs):
                    yield
            else:
                yield
        finally:
            self.add_phase(name, time.perf_counter() - started)

    # ------------------------------------------------------------------
    def current_span_id(self) -> int | None:
        if self.enabled and self.tracer.current is not None:
            return self.tracer.current.span_id
        return None

    def wire_context(self) -> dict:
        """The context dict shipped to the worker with the task."""
        return TraceContext(self.trace_id, self.current_span_id()).to_wire()

    def adopt_worker_spans(self, spans) -> None:
        """Queue a worker's exported spans for stitching under the
        innermost open span (the dispatch-attempt span)."""
        if self.enabled and spans:
            self._grafts.append((self.current_span_id(), list(spans)))

    def worker_lost(self, kind: str, started: float, ended: float,
                    attempt: int, parent_id: int | None = None) -> None:
        """Record a worker that died/hung/corrupted before reporting.

        ``parent_id`` is the (usually already-closed) dispatch-attempt
        span the fabricated partial span should hang under; defaults to
        the innermost open span.
        """
        if self.enabled:
            if parent_id is None:
                parent_id = self.current_span_id()
            self._faults.append((parent_id, kind, started, ended, attempt))

    # ------------------------------------------------------------------
    def stitched_spans(self) -> list[dict]:
        """The request's single stitched trace (call after the root
        span has closed)."""
        if not self.enabled:
            return []
        spans = self.tracer.export_spans()
        for parent_id, worker_spans in self._grafts:
            base = self.tracer.allocate_ids(len(worker_spans))
            spans.extend(remap_spans(
                worker_spans, base, parent_id=parent_id,
                trace_id=self.trace_id, extra_attrs={"process": "worker"},
            ))
        for parent_id, kind, started, ended, attempt in self._faults:
            span_id = self.tracer.allocate_ids(1)
            spans.append(partial_worker_span(
                span_id, parent_id, self.trace_id, kind,
                start=started, end=ended, attempt=attempt,
            ))
        return spans

    def rounded_phases(self) -> dict:
        return {name: round(seconds, 6)
                for name, seconds in sorted(self.phases.items())}


# ----------------------------------------------------------------------
# Prometheus text exposition


_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str) -> str:
    mangled = _METRIC_NAME_RE.sub("_", name)
    return f"{prefix}_{mangled}" if prefix else mangled


def _value(value) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Prometheus text-format exposition of a registry snapshot.

    Counters gain the conventional ``_total`` suffix, timers surface as
    summaries (``_count``/``_sum``), histograms as cumulative
    ``_bucket{le="..."}`` series with the implicit ``+Inf`` bucket.
    Instruments are emitted in sorted-name order, so two snapshots of
    the same registry diff cleanly.
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_value(value)}")
    for name, data in sorted(snapshot.get("timers", {}).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {_value(data.get('count', 0))}")
        lines.append(f"{metric}_sum {_value(data.get('total', 0.0))}")
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        bounds = list(data.get("bounds", ()))
        counts = list(data.get("bucket_counts", ()))
        for index, upper in enumerate(bounds):
            cumulative += counts[index] if index < len(counts) else 0
            lines.append(
                f'{metric}_bucket{{le="{upper:g}"}} {cumulative}')
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {_value(data.get("count", 0))}')
        lines.append(f"{metric}_sum {_value(data.get('total', 0.0))}")
        lines.append(f"{metric}_count {_value(data.get('count', 0))}")
    return "\n".join(lines) + "\n"
