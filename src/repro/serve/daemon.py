"""The analysis daemon: supervised dispatch with a degrade-don't-crash path.

:class:`AnalysisDaemon` owns the full request path the ISSUE's chaos
suite exercises::

    request -> validate -> quarantine check -> warm cache probe
            -> [breaker closed]  pool dispatch with deadline,
                                 bounded retry + backoff on worker faults
               [breaker open]    in-process degraded serving
            -> reply (ok | degraded | structured error)

Every hazard has one owner:

* a **bad request** is answered with ``bad-request``/``unknown-task``
  before it touches any state;
* a **worker fault** (crash / hang / corrupt reply) is retried with
  exponential backoff while the request's deadline allows — each fault
  already cost one worker, killed and respawned by the pool;
* a **poison request** — one that keeps killing fresh workers — is
  quarantined after ``poison_threshold`` kills and answered
  ``poisoned`` forever after, so it can never grind the pool down;
* a **flapping pool** trips the circuit breaker, and requests are
  served *in-process degraded*: the analysis runs under a tight
  :class:`~repro.runtime.budget.Budget` and the
  :mod:`repro.runtime.degrade` ladder, so the answer is still a sound
  over-approximation, just less precise — degraded, never wrong;
* **overload** is shed at the door (``overloaded``) by a bounded
  in-flight limit, and **shutdown** drains: in-flight requests finish,
  new ones get ``shutting-down``, the pool exits cleanly.

Latency, cache, retry and breaker health are all exported through the
:mod:`repro.obs` metrics registry (``serve.*`` instruments).
"""

from __future__ import annotations

import json
import threading
import time

from repro.obs import Observer
from repro.parallel.corpus import TASKS
from repro.serve.breaker import STATE_GAUGE, CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.pool import WorkerFailure, WorkerPool
from repro.serve.protocol import (
    DEFAULT_DEADLINE,
    ProtocolError,
    Request,
    error_reply,
    ok_reply,
    parse_request,
    parse_request_line,
)
from repro.serve.retry import RetryPolicy

#: budget applied to in-process degraded serving (cooperative; the
#: degradation ladder inside the analyses turns trips into ⊤-ward
#: precision loss rather than failures)
DEGRADED_BUDGET = {"deadline": 2.0, "tasks": 20000}


class AnalysisDaemon:
    """A long-lived, fault-isolated analysis service."""

    def __init__(
        self,
        pool_size: int = 2,
        queue_limit: int = 8,
        default_deadline: float = DEFAULT_DEADLINE,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        cache: ResultCache | None = None,
        poison_threshold: int = 2,
        observer: Observer | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
        summaries_dir: str | None = None,
    ):
        self.observer = observer if observer is not None else Observer()
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.cache = cache if cache is not None else ResultCache()
        self.default_deadline = default_deadline
        self.poison_threshold = poison_threshold
        self.summaries_dir = summaries_dir
        self.clock = clock
        self.sleep = sleep
        self.pool = WorkerPool(size=pool_size, observer=self.observer)
        self._quarantine: dict = {}        # request key -> reason
        self._worker_kills: dict = {}      # request key -> fresh workers killed
        self._seq = 0
        self._lock = threading.Lock()      # breaker + quarantine transitions
        self._inflight = threading.BoundedSemaphore(queue_limit)
        self._inflight_count = 0
        self._draining = threading.Event()
        self._drained = threading.Event()

    # ------------------------------------------------------------------
    # metrics helpers

    def _count(self, name: str, amount: int = 1) -> None:
        self.observer.registry.counter(name).inc(amount)

    def _gauges(self) -> None:
        registry = self.observer.registry
        registry.gauge("serve.breaker.state").set(STATE_GAUGE[self.breaker.state])
        registry.gauge("serve.inflight").set(self._inflight_count)
        registry.gauge("serve.quarantine.size").set(len(self._quarantine))

    # ------------------------------------------------------------------
    # entry points

    def handle_line(self, line: str) -> dict:
        """One JSONL request line -> one reply dict."""
        try:
            request = parse_request_line(line, TASKS)
        except ProtocolError as exc:
            self._count("serve.replies.error")
            # salvage the id if the line was at least JSON, so the
            # client can correlate the error with its request
            request_id = None
            try:
                data = json.loads(line)
                if isinstance(data, dict):
                    request_id = data.get("id")
            except (json.JSONDecodeError, TypeError):
                pass
            return error_reply(request_id, exc.code, str(exc))
        return self.handle(request)

    def handle(self, request: Request | dict) -> dict:
        """Serve one request end to end (thread-safe)."""
        if isinstance(request, dict):
            try:
                request = parse_request(request, TASKS)
            except ProtocolError as exc:
                self._count("serve.replies.error")
                return error_reply(request.get("id"), exc.code, str(exc))
        if self._draining.is_set():
            self._count("serve.replies.shed")
            return error_reply(request.id, "shutting-down",
                              "daemon is draining; no new requests accepted")
        if not self._inflight.acquire(blocking=False):
            self._count("serve.replies.shed")
            return error_reply(request.id, "overloaded",
                              "request queue is full; retry later")
        with self._lock:
            self._inflight_count += 1
        started = self.clock()
        try:
            reply = self._serve(request, started)
        except Exception as exc:  # noqa: BLE001 — supervisor must not leak raw errors
            reply = error_reply(request.id, "internal",
                                f"{type(exc).__name__}: {exc}")
        finally:
            with self._lock:
                self._inflight_count -= 1
            self._inflight.release()
        reply["seconds"] = round(self.clock() - started, 6)
        self._count("serve.requests")
        if reply["ok"]:
            self._count("serve.replies.degraded" if reply["degraded"]
                        else "serve.replies.ok")
        else:
            self._count("serve.replies.error")
        self.observer.registry.timer("serve.request_seconds").observe(
            reply["seconds"])
        self._gauges()
        return reply

    # ------------------------------------------------------------------
    # the dispatch path

    def _serve(self, request: Request, started: float) -> dict:
        key = request.key
        with self._lock:
            reason = self._quarantine.get(key)
        if reason is not None:
            self._count("serve.replies.poisoned")
            return error_reply(request.id, "poisoned", reason)

        # a request carrying an injected fault must actually reach a
        # worker — chaos schedules are only deterministic if the cache
        # cannot absorb them
        probe = None if request.inject is not None else self._probe_cache(request)
        if probe is not None and probe.hit:
            self._count("serve.cache.hits")
            return ok_reply(request.id, probe.payload, cached=True)
        self._count("serve.cache.misses")
        if probe is not None and probe.partial:
            self._count("serve.cache.partial_misses")
            self._count("serve.cache.invalidated_components", len(probe.dirty))
            if self.summaries_dir is not None and probe.fingerprint is not None:
                # with a summary store attached, the clean components of
                # a partial miss are exactly the ones the worker's lint
                # will splice from stored summaries instead of re-deriving
                reusable = len(probe.fingerprint.components) - len(probe.dirty)
                if reusable > 0:
                    self._count("serve.summaries.reusable_components", reusable)

        with self._lock:
            pool_allowed = self.breaker.allow()
        if not pool_allowed:
            self._count("serve.replies.degraded_served")
            return self._serve_degraded(request)

        reply = self._dispatch_with_retry(request, started)
        if reply["ok"] and not reply["degraded"] and probe is not None:
            self.cache.store(request.key, probe, reply["payload"])
        return reply

    #: tasks whose corpus implementations accept a summary store
    _SUMMARY_TASKS = ("lint", "failcheck")

    def _task_options(self, request: Request) -> dict:
        """The request's options, plus the daemon's summary store.

        The store directory is merged at dispatch time only — never
        into ``request.key`` — so caching and quarantine behave
        identically with and without a store, and a client-supplied
        ``summaries`` option still wins.
        """
        options = dict(request.options)
        if (
            self.summaries_dir is not None
            and request.task in self._SUMMARY_TASKS
            and "summaries" not in options
        ):
            options["summaries"] = self.summaries_dir
        return options

    def _probe_cache(self, request: Request):
        """Parse the file and probe the warm cache (None = uncacheable)."""
        try:
            from repro.prolog.program import load_program

            with open(request.path, encoding="utf-8") as handle:
                program = load_program(handle.read())
        except Exception:  # noqa: BLE001 — unreadable/unparsable: worker decides
            return None
        try:
            return self.cache.probe(request.key, program)
        except Exception:  # noqa: BLE001 — cache trouble must not fail requests
            return None

    def _dispatch_with_retry(self, request: Request, started: float) -> dict:
        """Pool dispatch under the retry session and the breaker."""
        with self._lock:
            self._seq += 1
            seq = self._seq
        session = self.retry.session(
            budget_seconds=request.deadline, seed=seq,
            clock=self.clock, sleep=self.sleep,
        )
        last_failure: WorkerFailure | None = None
        while True:
            remaining = session.remaining()
            if remaining is not None and remaining <= 0:
                break
            # an injected fault models a transient worker fault and fires
            # once per request, so retry recovers — unless the spec says
            # {"every": true}, which models a poison request that kills
            # every fresh worker it reaches
            inject = request.inject
            if inject is not None and session.attempt > 1 and not inject.get("every"):
                inject = None
            try:
                record = self.pool.submit(
                    seq, request.task, request.path, self._task_options(request),
                    remaining if remaining is not None else request.deadline,
                    inject,
                )
            except WorkerFailure as failure:
                last_failure = failure
                self._record_worker_failure(request, failure)
                if self._poisoned(request):
                    self._count("serve.replies.poisoned")
                    return error_reply(
                        request.id, "poisoned",
                        f"request killed {self.poison_threshold} fresh "
                        f"worker(s) and was quarantined ({failure.kind})",
                        attempts=session.attempt,
                    )
                self._count("serve.retries")
                if not session.backoff():
                    break
                continue
            with self._lock:
                self.breaker.record_success()
                # the request completed, so it is demonstrably not poison:
                # forget its worker kills, or transient crashes on a
                # popular key would accumulate into a false quarantine
                self._worker_kills.pop(request.key, None)
            self.observer.registry.merge_snapshot(record.get("metrics", {}))
            if record["error"] is not None:
                # deterministic analysis failure: structured, not retried
                return error_reply(request.id, "analysis-error",
                                   record["error"], attempts=session.attempt)
            return ok_reply(request.id, record["payload"],
                            attempts=session.attempt)
        # retries exhausted (attempts or deadline)
        if last_failure is None:
            return error_reply(request.id, "deadline",
                               "request deadline exhausted before dispatch",
                               attempts=session.attempt)
        code = {
            "hang": "deadline",
            "crash": "worker-crash",
            "corrupt": "worker-corrupt",
        }.get(last_failure.kind, "worker-crash")
        return error_reply(
            request.id, code,
            f"gave up after {session.attempt} attempt(s): {last_failure}",
            attempts=session.attempt, fault=last_failure.kind,
        )

    def _record_worker_failure(self, request: Request, failure: WorkerFailure) -> None:
        self._count(f"serve.pool.faults.{failure.kind}")
        with self._lock:
            self.breaker.record_failure()
            if failure.kind in ("crash", "hang"):
                count = self._worker_kills.get(request.key, 0) + 1
                self._worker_kills[request.key] = count
                if count >= self.poison_threshold:
                    self._quarantine[request.key] = (
                        f"quarantined: killed {count} fresh worker(s) "
                        f"(last fault: {failure.kind})"
                    )

    def _poisoned(self, request: Request) -> bool:
        with self._lock:
            return request.key in self._quarantine

    # ------------------------------------------------------------------
    # degraded serving (breaker open)

    def _serve_degraded(self, request: Request) -> dict:
        """In-process, tightly budgeted, ladder-degraded serving.

        Only reachable for requests that are *not* quarantined, so a
        known worker-killer can never run inside the daemon process.
        Injected process faults are deliberately ignored here: they
        model worker-side faults, and this path has no worker.
        """
        options = self._task_options(request)
        options["deadline"] = min(
            DEGRADED_BUDGET["deadline"],
            options.get("deadline") or request.deadline,
        )
        started = time.perf_counter()
        try:
            payload = TASKS[request.task](request.path, options)
        except Exception as exc:  # noqa: BLE001 — structured, not raised
            return error_reply(request.id, "analysis-error",
                               f"{type(exc).__name__}: {exc} (degraded mode)")
        reply = ok_reply(request.id, payload, degraded=True)
        reply["seconds"] = time.perf_counter() - started
        return reply

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop intake, wait for in-flight work, stop the pool.

        Returns True on a clean drain within ``timeout``.
        """
        self._draining.set()
        deadline_at = time.monotonic() + timeout
        clean = True
        while True:
            with self._lock:
                if self._inflight_count == 0:
                    break
            if time.monotonic() >= deadline_at:
                clean = False
                break
            time.sleep(0.01)
        self.pool.close()
        self._drained.set()
        return clean

    def close(self) -> None:
        if not self._drained.is_set():
            self.drain()

    def __enter__(self) -> "AnalysisDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
