"""The analysis daemon: supervised dispatch with a degrade-don't-crash path.

:class:`AnalysisDaemon` owns the full request path the ISSUE's chaos
suite exercises::

    request -> validate -> quarantine check -> warm cache probe
            -> [breaker closed]  pool dispatch with deadline,
                                 bounded retry + backoff on worker faults
               [breaker open]    in-process degraded serving
            -> reply (ok | degraded | structured error)

Every hazard has one owner:

* a **bad request** is answered with ``bad-request``/``unknown-task``
  before it touches any state;
* a **worker fault** (crash / hang / corrupt reply) is retried with
  exponential backoff while the request's deadline allows — each fault
  already cost one worker, killed and respawned by the pool;
* a **poison request** — one that keeps killing fresh workers — is
  quarantined after ``poison_threshold`` kills and answered
  ``poisoned`` forever after, so it can never grind the pool down;
* a **flapping pool** trips the circuit breaker, and requests are
  served *in-process degraded*: the analysis runs under a tight
  :class:`~repro.runtime.budget.Budget` and the
  :mod:`repro.runtime.degrade` ladder, so the answer is still a sound
  over-approximation, just less precise — degraded, never wrong;
* **overload** is shed at the door (``overloaded``) by a bounded
  in-flight limit, and **shutdown** drains: in-flight requests finish,
  new ones get ``shutting-down``, the pool exits cleanly.

Latency, cache, retry and breaker health are all exported through the
:mod:`repro.obs` metrics registry (``serve.*`` instruments), and every
request is covered end to end by observability plumbing:

* a **distributed trace**: the request gets a ``trace_id`` (adopted
  from the client's ``trace`` field when sent), the supervisor's spans
  (request, cache probe, dispatch attempts) and the worker's spans are
  stitched into one tree (:mod:`repro.obs.distributed`), kills
  included — a deadline-killed worker leaves a marked *partial* span,
  and the :class:`~repro.serve.pool.WorkerFailure` unwinding through
  the dispatch span reuses the budget-trip flush machinery to mark it
  ``exhausted``;
* an **access log** line (:class:`~repro.serve.telemetry.AccessLog`):
  trace id, outcome, cache/breaker/retry disposition and the per-phase
  latency breakdown (queue / cache / dispatch / worker / retry-sleep);
* a **latency histogram** (``serve.request_latency_seconds``) with
  p50/p95/p99 in every snapshot, and ``stats`` / ``trace`` /
  ``metrics`` admin requests served supervisor-side for live
  inspection (``python -m repro.obs top``).
"""

from __future__ import annotations

import json
import threading
import time

from repro.obs import Observer
from repro.obs.distributed import process_label
from repro.parallel.corpus import TASKS
from repro.serve.breaker import STATE_GAUGE, CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.pool import WorkerFailure, WorkerPool
from repro.serve.protocol import (
    DEFAULT_DEADLINE,
    ProtocolError,
    Request,
    error_reply,
    ok_reply,
    parse_request,
    parse_request_line,
)
from repro.serve.retry import RetryPolicy
from repro.serve.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    AccessLog,
    RequestTelemetry,
    TraceStore,
    render_prometheus,
)

#: budget applied to in-process degraded serving (cooperative; the
#: degradation ladder inside the analyses turns trips into ⊤-ward
#: precision loss rather than failures)
DEGRADED_BUDGET = {"deadline": 2.0, "tasks": 20000}


class AnalysisDaemon:
    """A long-lived, fault-isolated analysis service."""

    def __init__(
        self,
        pool_size: int = 2,
        queue_limit: int = 8,
        default_deadline: float = DEFAULT_DEADLINE,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        cache: ResultCache | None = None,
        poison_threshold: int = 2,
        observer: Observer | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
        summaries_dir: str | None = None,
        tracing: bool = True,
        access_log: AccessLog | str | None = None,
        trace_capacity: int = 256,
    ):
        self.observer = observer if observer is not None else Observer()
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.cache = cache if cache is not None else ResultCache()
        self.default_deadline = default_deadline
        self.poison_threshold = poison_threshold
        self.summaries_dir = summaries_dir
        self.clock = clock
        self.sleep = sleep
        #: per-request distributed tracing + trace storage switch; the
        #: access log and counters stay on either way
        self.tracing = tracing
        self.access_log = (
            access_log if isinstance(access_log, AccessLog)
            else AccessLog(access_log)
        )
        self.traces = TraceStore(capacity=trace_capacity)
        self.pool = WorkerPool(size=pool_size, observer=self.observer)
        self._quarantine: dict = {}        # request key -> reason
        self._worker_kills: dict = {}      # request key -> fresh workers killed
        self._seq = 0
        self._lock = threading.Lock()      # breaker + quarantine transitions
        self._inflight = threading.BoundedSemaphore(queue_limit)
        self._inflight_count = 0
        self._draining = threading.Event()
        self._drained = threading.Event()

    # ------------------------------------------------------------------
    # metrics helpers

    def _count(self, name: str, amount: int = 1) -> None:
        self.observer.registry.counter(name).inc(amount)

    def _gauges(self) -> None:
        registry = self.observer.registry
        registry.gauge("serve.breaker.state").set(STATE_GAUGE[self.breaker.state])
        registry.gauge("serve.inflight").set(self._inflight_count)
        registry.gauge("serve.quarantine.size").set(len(self._quarantine))

    # ------------------------------------------------------------------
    # entry points

    def handle_line(self, line: str) -> dict:
        """One JSONL request line -> one reply dict."""
        try:
            request = parse_request_line(line, TASKS)
        except ProtocolError as exc:
            # salvage the id (and any trace context) if the line was at
            # least JSON, so the client can correlate the error
            request_id, trace = None, None
            try:
                data = json.loads(line)
                if isinstance(data, dict):
                    request_id = data.get("id")
                    trace = data.get("trace")
            except (json.JSONDecodeError, TypeError):
                pass
            return self._reject(request_id, exc.code, str(exc), trace=trace)
        return self.handle(request)

    def handle(self, request: Request | dict) -> dict:
        """Serve one request end to end (thread-safe)."""
        if isinstance(request, dict):
            try:
                request = parse_request(request, TASKS)
            except ProtocolError as exc:
                return self._reject(request.get("id"), exc.code, str(exc),
                                    trace=request.get("trace")
                                    if isinstance(request.get("trace"), dict)
                                    else None)
        if request.is_admin:
            return self._handle_admin(request)
        if self._draining.is_set():
            self._count("serve.replies.shed")
            reply = error_reply(request.id, "shutting-down",
                                "daemon is draining; no new requests accepted")
            return self._finish_unserved(request, reply)
        if not self._inflight.acquire(blocking=False):
            self._count("serve.replies.shed")
            reply = error_reply(request.id, "overloaded",
                                "request queue is full; retry later")
            return self._finish_unserved(request, reply)
        with self._lock:
            self._inflight_count += 1
        started = self.clock()
        telemetry = RequestTelemetry(enabled=self.tracing,
                                     trace=request.trace)
        root_attrs = {"task": request.task, "path": request.path,
                      "id": request.id, "process": process_label()}
        if telemetry.parent_span_id is not None:
            # the client's span under which it will stitch this trace
            root_attrs["remote_parent"] = telemetry.parent_span_id
        try:
            try:
                with telemetry.span("serve.request", **root_attrs):
                    reply = self._serve(request, started, telemetry)
            except Exception as exc:  # noqa: BLE001 — supervisor must not leak raw errors
                reply = error_reply(request.id, "internal",
                                    f"{type(exc).__name__}: {exc}")
        finally:
            with self._lock:
                self._inflight_count -= 1
            self._inflight.release()
        reply["seconds"] = round(self.clock() - started, 6)
        reply["trace_id"] = telemetry.trace_id
        self._count("serve.requests")
        if reply["ok"]:
            self._count("serve.replies.degraded" if reply["degraded"]
                        else "serve.replies.ok")
        else:
            self._count("serve.replies.error")
        registry = self.observer.registry
        registry.timer("serve.request_seconds").observe(reply["seconds"])
        registry.histogram("serve.request_latency_seconds").observe(
            reply["seconds"])
        if telemetry.enabled:
            spans = telemetry.stitched_spans()
            if spans:
                self.traces.put(telemetry.trace_id, spans)
        self._log_access(request, reply, telemetry)
        self._gauges()
        return reply

    # ------------------------------------------------------------------
    # telemetry plumbing

    def _reject(self, request_id, code: str, message: str,
                trace: dict | None = None) -> dict:
        """A pre-dispatch rejection: still traced, still logged."""
        self._count("serve.replies.error")
        telemetry = RequestTelemetry(enabled=False, trace=trace)
        reply = error_reply(request_id, code, message)
        reply["trace_id"] = telemetry.trace_id
        self.access_log.log({
            "trace_id": telemetry.trace_id,
            "id": request_id,
            "task": None,
            "path": None,
            "outcome": "error",
            "code": code,
            "cached": False,
            "degraded": False,
            "attempts": 0,
            "seconds": 0.0,
            "breaker": self.breaker.state,
            "phases": {},
        })
        return reply

    def _finish_unserved(self, request: Request, reply: dict) -> dict:
        """Stamp + log a shed reply (drain / overload): no dispatch ran."""
        telemetry = RequestTelemetry(enabled=False, trace=request.trace)
        reply["trace_id"] = telemetry.trace_id
        self._log_access(request, reply, telemetry)
        return reply

    def _log_access(self, request: Request, reply: dict,
                    telemetry: RequestTelemetry) -> None:
        error = reply.get("error") or {}
        self.access_log.log({
            "trace_id": telemetry.trace_id,
            "id": request.id,
            "task": request.task,
            "path": request.path,
            "outcome": ("degraded" if reply.get("degraded") else "ok")
            if reply.get("ok") else "error",
            "code": error.get("code"),
            "fault": error.get("fault"),
            "cached": reply.get("cached", False),
            "degraded": reply.get("degraded", False),
            "attempts": reply.get("attempts", 0),
            "seconds": reply.get("seconds", 0.0),
            "breaker": self.breaker.state,
            "phases": telemetry.rounded_phases(),
        })

    # ------------------------------------------------------------------
    # admin requests (supervisor-side; no pool, cache or quarantine)

    def _handle_admin(self, request: Request) -> dict:
        telemetry = RequestTelemetry(enabled=False, trace=request.trace)
        self._count("serve.admin.requests")
        self._gauges()
        if request.task == "stats":
            reply = ok_reply(request.id, self.stats(
                recent=int(request.options.get("recent", 10) or 0)))
        elif request.task == "metrics":
            snapshot = self.observer.registry.snapshot()
            reply = ok_reply(request.id, {
                "content_type": PROMETHEUS_CONTENT_TYPE,
                "text": render_prometheus(snapshot),
            })
        else:  # "trace"
            trace_id = request.options.get("trace_id") or request.path
            spans = self.traces.get(trace_id) if trace_id else None
            if spans is None:
                reply = error_reply(
                    request.id, "not-found",
                    f"no stored trace with id {trace_id!r}")
            else:
                reply = ok_reply(request.id,
                                 {"trace_id": trace_id, "spans": spans})
        reply["trace_id"] = telemetry.trace_id
        self._log_access(request, reply, telemetry)
        return reply

    def stats(self, recent: int = 10) -> dict:
        """The live snapshot behind the ``stats`` admin request."""
        with self._lock:
            inflight = self._inflight_count
            quarantined = len(self._quarantine)
        return {
            "pool": {"size": self.pool.size, "respawns": self.pool.respawns},
            "breaker": self.breaker.state,
            "inflight": inflight,
            "quarantined": quarantined,
            "tracing": self.tracing,
            "traces": {"stored": len(self.traces),
                       "evicted": self.traces.evicted},
            "access_log": self.access_log.stats(),
            "recent": self.access_log.recent(limit=recent) if recent else [],
            "metrics": self.observer.registry.snapshot(),
        }

    # ------------------------------------------------------------------
    # the dispatch path

    def _serve(self, request: Request, started: float,
               telemetry: RequestTelemetry) -> dict:
        key = request.key
        with self._lock:
            reason = self._quarantine.get(key)
        if reason is not None:
            self._count("serve.replies.poisoned")
            telemetry.event("quarantine.hit")
            return error_reply(request.id, "poisoned", reason)

        # a request carrying an injected fault must actually reach a
        # worker — chaos schedules are only deterministic if the cache
        # cannot absorb them
        probe = None
        if request.inject is None:
            with telemetry.phase("cache", span_name="serve.cache.probe"):
                probe = self._probe_cache(request)
        if probe is not None and probe.hit:
            self._count("serve.cache.hits")
            telemetry.event("cache.hit")
            return ok_reply(request.id, probe.payload, cached=True)
        self._count("serve.cache.misses")
        if probe is not None and probe.partial:
            self._count("serve.cache.partial_misses")
            self._count("serve.cache.invalidated_components", len(probe.dirty))
            if self.summaries_dir is not None and probe.fingerprint is not None:
                # with a summary store attached, the clean components of
                # a partial miss are exactly the ones the worker's lint
                # will splice from stored summaries instead of re-deriving
                reusable = len(probe.fingerprint.components) - len(probe.dirty)
                if reusable > 0:
                    self._count("serve.summaries.reusable_components", reusable)

        with self._lock:
            pool_allowed = self.breaker.allow()
        if not pool_allowed:
            self._count("serve.replies.degraded_served")
            telemetry.event("breaker.open")
            with telemetry.span("serve.degraded", task=request.task):
                return self._serve_degraded(request)

        reply = self._dispatch_with_retry(request, started, telemetry)
        if reply["ok"] and not reply["degraded"] and probe is not None:
            self.cache.store(request.key, probe, reply["payload"])
        return reply

    #: tasks whose corpus implementations accept a summary store
    _SUMMARY_TASKS = ("lint", "failcheck")

    def _task_options(self, request: Request) -> dict:
        """The request's options, plus the daemon's summary store.

        The store directory is merged at dispatch time only — never
        into ``request.key`` — so caching and quarantine behave
        identically with and without a store, and a client-supplied
        ``summaries`` option still wins.
        """
        options = dict(request.options)
        if (
            self.summaries_dir is not None
            and request.task in self._SUMMARY_TASKS
            and "summaries" not in options
        ):
            options["summaries"] = self.summaries_dir
        return options

    def _probe_cache(self, request: Request):
        """Parse the file and probe the warm cache (None = uncacheable)."""
        try:
            from repro.prolog.program import load_program

            with open(request.path, encoding="utf-8") as handle:
                program = load_program(handle.read())
        except Exception:  # noqa: BLE001 — unreadable/unparsable: worker decides
            return None
        try:
            return self.cache.probe(request.key, program)
        except Exception:  # noqa: BLE001 — cache trouble must not fail requests
            return None

    def _dispatch_with_retry(self, request: Request, started: float,
                             telemetry: RequestTelemetry) -> dict:
        """Pool dispatch under the retry session and the breaker."""
        with self._lock:
            self._seq += 1
            seq = self._seq

        def traced_sleep(seconds: float) -> None:
            # satellite instrumentation: every backoff sleep becomes a
            # timing sample and an explicit event on the request span
            sleep_started = time.perf_counter()
            self.sleep(seconds)
            slept = time.perf_counter() - sleep_started
            self.observer.registry.timer(
                "serve.retry.sleep_seconds").observe(slept)
            telemetry.add_phase("retry_sleep", slept)
            telemetry.event("retry.sleep", seconds=round(slept, 6),
                            attempt=session.attempt)

        session = self.retry.session(
            budget_seconds=request.deadline, seed=seq,
            clock=self.clock, sleep=traced_sleep,
        )
        last_failure: WorkerFailure | None = None
        while True:
            remaining = session.remaining()
            if remaining is not None and remaining <= 0:
                break
            # an injected fault models a transient worker fault and fires
            # once per request, so retry recovers — unless the spec says
            # {"every": true}, which models a poison request that kills
            # every fresh worker it reaches
            inject = request.inject
            if inject is not None and session.attempt > 1 and not inject.get("every"):
                inject = None
            attempt_started = time.perf_counter()
            dispatch_span_id = None
            try:
                # the WorkerFailure raised on a kill carries a ``kind``
                # attribute, so unwinding through this span reuses the
                # budget-trip flush machinery: the dispatch span is
                # closed "exhausted" with a resource_exhausted event,
                # and the trace survives the kill well-formed
                with telemetry.span("serve.dispatch", seq=seq,
                                    attempt=session.attempt) as span:
                    if span is not None:
                        dispatch_span_id = span.span_id
                    record = self.pool.submit(
                        seq, request.task, request.path,
                        self._task_options(request),
                        remaining if remaining is not None else request.deadline,
                        inject,
                        trace=telemetry.wire_context()
                        if telemetry.enabled else None,
                    )
                    telemetry.adopt_worker_spans(record.get("spans"))
            except WorkerFailure as failure:
                queue_seconds = getattr(failure, "queue_seconds", 0.0)
                telemetry.add_phase("queue", queue_seconds)
                telemetry.add_phase("dispatch", max(
                    0.0, time.perf_counter() - attempt_started - queue_seconds))
                telemetry.worker_lost(
                    failure.kind, attempt_started + queue_seconds,
                    time.perf_counter(), session.attempt,
                    parent_id=dispatch_span_id)
                last_failure = failure
                self._record_worker_failure(request, failure)
                if self._poisoned(request):
                    self._count("serve.replies.poisoned")
                    return error_reply(
                        request.id, "poisoned",
                        f"request killed {self.poison_threshold} fresh "
                        f"worker(s) and was quarantined ({failure.kind})",
                        attempts=session.attempt,
                    )
                self._count("serve.retries")
                if not session.backoff():
                    break
                continue
            queue_seconds = record.get("queue_seconds", 0.0)
            worker_seconds = record.get("seconds", 0.0)
            telemetry.add_phase("queue", queue_seconds)
            telemetry.add_phase("worker", worker_seconds)
            telemetry.add_phase("dispatch", max(
                0.0, time.perf_counter() - attempt_started
                - queue_seconds - worker_seconds))
            with self._lock:
                self.breaker.record_success()
                # the request completed, so it is demonstrably not poison:
                # forget its worker kills, or transient crashes on a
                # popular key would accumulate into a false quarantine
                self._worker_kills.pop(request.key, None)
            self.observer.registry.merge_snapshot(record.get("metrics", {}))
            if record["error"] is not None:
                # deterministic analysis failure: structured, not retried
                return error_reply(request.id, "analysis-error",
                                   record["error"], attempts=session.attempt)
            return ok_reply(request.id, record["payload"],
                            attempts=session.attempt)
        # retries exhausted (attempts or deadline)
        if last_failure is None:
            return error_reply(request.id, "deadline",
                               "request deadline exhausted before dispatch",
                               attempts=session.attempt)
        code = {
            "hang": "deadline",
            "crash": "worker-crash",
            "corrupt": "worker-corrupt",
        }.get(last_failure.kind, "worker-crash")
        return error_reply(
            request.id, code,
            f"gave up after {session.attempt} attempt(s): {last_failure}",
            attempts=session.attempt, fault=last_failure.kind,
        )

    def _record_worker_failure(self, request: Request, failure: WorkerFailure) -> None:
        self._count(f"serve.pool.faults.{failure.kind}")
        with self._lock:
            self.breaker.record_failure()
            if failure.kind in ("crash", "hang"):
                count = self._worker_kills.get(request.key, 0) + 1
                self._worker_kills[request.key] = count
                if count >= self.poison_threshold:
                    self._quarantine[request.key] = (
                        f"quarantined: killed {count} fresh worker(s) "
                        f"(last fault: {failure.kind})"
                    )

    def _poisoned(self, request: Request) -> bool:
        with self._lock:
            return request.key in self._quarantine

    # ------------------------------------------------------------------
    # degraded serving (breaker open)

    def _serve_degraded(self, request: Request) -> dict:
        """In-process, tightly budgeted, ladder-degraded serving.

        Only reachable for requests that are *not* quarantined, so a
        known worker-killer can never run inside the daemon process.
        Injected process faults are deliberately ignored here: they
        model worker-side faults, and this path has no worker.
        """
        options = self._task_options(request)
        options["deadline"] = min(
            DEGRADED_BUDGET["deadline"],
            options.get("deadline") or request.deadline,
        )
        started = time.perf_counter()
        try:
            payload = TASKS[request.task](request.path, options)
        except Exception as exc:  # noqa: BLE001 — structured, not raised
            return error_reply(request.id, "analysis-error",
                               f"{type(exc).__name__}: {exc} (degraded mode)")
        reply = ok_reply(request.id, payload, degraded=True)
        reply["seconds"] = time.perf_counter() - started
        return reply

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop intake, wait for in-flight work, stop the pool.

        Returns True on a clean drain within ``timeout``.
        """
        self._draining.set()
        deadline_at = time.monotonic() + timeout
        clean = True
        while True:
            with self._lock:
                if self._inflight_count == 0:
                    break
            if time.monotonic() >= deadline_at:
                clean = False
                break
            time.sleep(0.01)
        self.pool.close()
        self._drained.set()
        return clean

    def close(self) -> None:
        if not self._drained.is_set():
            self.drain()
        self.access_log.close()

    def __enter__(self) -> "AnalysisDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
