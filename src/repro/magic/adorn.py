"""Adornment: annotate predicates with bound/free argument patterns.

An adornment is a string over ``{'b', 'f'}``, one character per
argument.  Starting from the query's adornment, rules are specialised
left-to-right (the standard sideways-information-passing strategy): an
argument is bound if all its variables are bound by the head's bound
arguments or by earlier body literals.

The lattice primitives of that strategy — which head variables an
adornment binds (:func:`head_bound_vars`), the adornment a literal gets
under a binding set (:func:`literal_adornment`), the binding a literal
contributes (:func:`bind_literal`) and the flattened conjunction walk
(:func:`flatten_conjunction`) — are exposed for reuse: the mode checker
(:mod:`repro.analysis.modecheck`) drives the same left-to-right flow
with a *checking* interpretation of the per-literal binding sets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.engine.builtins import is_builtin
from repro.prolog.parser import Clause
from repro.prolog.program import Indicator, Program
from repro.terms.subst import EMPTY_SUBST
from repro.terms.term import Struct, Term, Var, term_variables


def adornment_of(goal: Term) -> str:
    """Adornment of a query goal: 'b' for ground args, 'f' otherwise."""
    if not isinstance(goal, Struct):
        return ""
    return "".join(
        "b" if EMPTY_SUBST.is_ground(arg) else "f" for arg in goal.args
    )


def adorned_name(name: str, adornment: str) -> str:
    return f"{name}__{adornment}" if adornment else name


@dataclass
class AdornedProgram:
    """The adorned rules plus bookkeeping for the magic rewrite."""

    program: Program
    query_indicator: Indicator
    query_adornment: str
    # (original indicator, adornment) pairs reached from the query
    reached: set[tuple[Indicator, str]] = field(default_factory=set)


def adorn_program(program: Program, query: Term) -> AdornedProgram:
    """Adorn ``program`` for ``query``; returns a new program.

    Predicate ``p/n`` with adornment ``a`` becomes ``p__a/n``.  Builtins
    are untouched and treated as binding all their variables afterwards
    (safe for the left-to-right strategy used here).
    """
    if not isinstance(query, Struct):
        raise ValueError("query must be a compound goal")
    query_adornment = adornment_of(query)
    out = Program()
    result = AdornedProgram(out, query.indicator, query_adornment)
    worklist: deque[tuple[Indicator, str]] = deque([(query.indicator, query_adornment)])
    while worklist:
        indicator, adornment = worklist.popleft()
        if (indicator, adornment) in result.reached:
            continue
        result.reached.add((indicator, adornment))
        for clause in program.clauses_for(indicator):
            adorned = _adorn_clause(clause, adornment, worklist)
            out.add_clause(adorned)
    return result


def _adorn_clause(clause: Clause, adornment: str, worklist: deque) -> Clause:
    head = clause.head
    if not isinstance(head, Struct):
        raise ValueError(f"cannot adorn 0-ary head {head!r}")
    bound = head_bound_vars(head, adornment)
    new_body: list[Term] = []
    for literal in flatten_conjunction(clause.body):
        indicator = _literal_indicator(literal)
        if indicator is None or is_builtin(indicator):
            new_body.append(literal)
            bind_literal(literal, bound)
            continue
        lit_adornment = literal_adornment(literal, bound)
        worklist.append((indicator, lit_adornment))
        new_body.append(_rename_literal(literal, lit_adornment))
        bind_literal(literal, bound)
    new_head = Struct(adorned_name(head.functor, adornment), head.args)
    return Clause(new_head, _rebuild_body(new_body), clause.varmap, clause.line)


def _literal_indicator(literal: Term) -> Indicator | None:
    if isinstance(literal, Struct):
        return literal.indicator
    if isinstance(literal, str):
        return (literal, 0)
    return None


def head_bound_vars(head: Term, adornment: str) -> set[int]:
    """Variable ids bound at clause entry under a head adornment."""
    bound: set[int] = set()
    if isinstance(head, Struct):
        for arg, kind in zip(head.args, adornment):
            if kind == "b":
                bound.update(v.id for v in term_variables(arg))
    return bound


def literal_adornment(literal: Term, bound: set[int]) -> str:
    """Adornment of a body literal given the current binding set."""
    if not isinstance(literal, Struct):
        return ""
    return "".join(
        "b" if all(v.id in bound for v in term_variables(arg)) else "f"
        for arg in literal.args
    )


def argument_bound(arg: Term, bound: set[int]) -> bool:
    """True when every variable of ``arg`` is in the binding set."""
    return all(v.id in bound for v in term_variables(arg))


def _rename_literal(literal: Term, adornment: str) -> Term:
    if isinstance(literal, Struct):
        return Struct(adorned_name(literal.functor, adornment), literal.args)
    return adorned_name(literal, adornment)


def bind_literal(literal: Term, bound: set[int]) -> None:
    """Bind every variable of ``literal`` (the optimistic SIPS step)."""
    bound.update(v.id for v in term_variables(literal))


def flatten_conjunction(body: Term) -> list[Term]:
    """Top-level conjuncts of a body, ``true`` removed."""
    if body == "true":
        return []
    items: list[Term] = []
    stack = [body]
    while stack:
        term = stack.pop()
        if isinstance(term, Struct) and term.functor == "," and term.arity == 2:
            stack.append(term.args[1])
            stack.append(term.args[0])
        elif term == "true":
            continue
        else:
            items.append(term)
    return items


# backwards-compatible aliases (pre-exposure private names)
_literal_adornment = literal_adornment
_bind_all = bind_literal
_flatten = flatten_conjunction


def _rebuild_body(literals: list[Term]) -> Term:
    if not literals:
        return "true"
    body = literals[-1]
    for literal in reversed(literals[:-1]):
        body = Struct(",", (literal, body))
    return body
