"""Magic-sets transformation (Bancilhon et al.; Beeri & Ramakrishnan).

Rewrites a program + query into one whose bottom-up evaluation performs
only the goal-directed work a top-down evaluation would.  In the paper
(section 3.1), magic sets is the transformation one needs to obtain
*input* groundness with a bottom-up engine — and the point is that a
tabled engine records calls anyway, making the transformation
unnecessary.  We implement it to run that comparison (experiment E8).
"""

from repro.magic.adorn import adorn_program, adornment_of, AdornedProgram
from repro.magic.magic import magic_transform, supplementary_transform, magic_answers

__all__ = [
    "adorn_program",
    "adornment_of",
    "AdornedProgram",
    "magic_transform",
    "supplementary_transform",
    "magic_answers",
]
