"""The magic (and supplementary magic) rewriting proper.

Given an adorned program, produce the magic program:

* for each adorned rule ``p__a(t) :- l1, ..., ln`` add the guarded rule
  ``p__a(t) :- m_p__a(t_bound), l1, ..., ln``;
* for each derived body literal ``li = q__c(s)`` add the magic rule
  ``m_q__c(s_bound) :- m_p__a(t_bound), l1, ..., l(i-1)``;
* seed with the fact ``m_query(query_bound_args)``.

The *supplementary* variant (Beeri & Ramakrishnan's supplementary magic
sets; the paper's section 4.2 mentions XSB's analogous "supplementary
tabling") factors the shared rule prefixes into ``sup`` predicates so
each prefix join is computed once.
"""

from __future__ import annotations

from repro.analysis.depgraph import prune_unreachable
from repro.magic.adorn import AdornedProgram, adorn_program, adorned_name
from repro.prolog.parser import Clause
from repro.prolog.program import Program
from repro.terms.term import Struct, Term, Var, term_variables
from repro.terms.unify import unify
from repro.terms.subst import EMPTY_SUBST
from repro.terms.variant import rename_apart
from repro.engine.builtins import is_builtin


def _magic_literal(literal: Term) -> Term | None:
    """The magic guard for an adorned literal (None for all-free)."""
    if not isinstance(literal, Struct):
        return f"m_{literal}"
    name = literal.functor
    if "__" not in name:
        return None
    base, adornment = name.rsplit("__", 1)
    bound_args = tuple(
        arg for arg, kind in zip(literal.args, adornment) if kind == "b"
    )
    magic_name = f"m_{name}"
    if not bound_args:
        return magic_name
    return Struct(magic_name, bound_args)


def _is_adorned(literal: Term) -> bool:
    if isinstance(literal, Struct):
        return "__" in literal.functor
    return isinstance(literal, str) and "__" in literal


def magic_transform(program: Program, query: Term) -> tuple[Program, Term]:
    """Adorn + magic rewrite; returns (magic program, adorned query).

    Predicates the query's call graph cannot reach are pruned before
    adornment (:func:`repro.analysis.depgraph.prune_unreachable`), so
    the rewrite's output is proportional to the query-relevant slice.
    """
    return _observed_rewrite(program, query, "magic", _magic_transform)


def _magic_transform(program: Program, query: Term) -> tuple[Program, Term]:
    program = prune_unreachable(program, query)
    adorned = adorn_program(program, query)
    out = Program()
    for indicator in adorned.program.predicates():
        for clause in adorned.program.clauses_for(indicator):
            _rewrite_clause(clause, out, supplementary=False)
    adorned_query = _adorned_query(adorned, query)
    _seed(out, adorned_query)
    return out, adorned_query


def supplementary_transform(program: Program, query: Term) -> tuple[Program, Term]:
    """Supplementary magic: shared prefix joins become sup predicates."""
    return _observed_rewrite(
        program, query, "supplementary", _supplementary_transform
    )


def _supplementary_transform(
    program: Program, query: Term
) -> tuple[Program, Term]:
    program = prune_unreachable(program, query)
    adorned = adorn_program(program, query)
    out = Program()
    counter = [0]
    for indicator in adorned.program.predicates():
        for clause in adorned.program.clauses_for(indicator):
            _rewrite_clause(clause, out, supplementary=True, counter=counter)
    adorned_query = _adorned_query(adorned, query)
    _seed(out, adorned_query)
    return out, adorned_query


def _observed_rewrite(program: Program, query: Term, variant: str, transform):
    """Run a rewrite under the current observer (span + rule counters)."""
    from repro.obs.observer import get_observer
    from repro.terms.term import term_to_str

    obs = get_observer()
    if not obs.enabled:
        return transform(program, query)
    with obs.span(
        "magic.rewrite", variant=variant, query=term_to_str(query)
    ) as span:
        with obs.registry.time(f"magic.rewrite.{variant}"):
            out, adorned_query = transform(program, query)
        rules = sum(len(out.clauses_for(i)) for i in out.predicates())
        span.attrs["rules"] = rules
        obs.registry.counter("magic.rewrite.rules").value += rules
        obs.registry.counter("magic.rewrite.runs").value += 1
        return out, adorned_query


def _adorned_query(adorned: AdornedProgram, query: Term) -> Term:
    assert isinstance(query, Struct)
    return Struct(adorned_name(query.functor, adorned.query_adornment), query.args)


def _seed(out: Program, adorned_query: Term) -> None:
    guard = _magic_literal(adorned_query)
    if guard is None:
        return
    out.add_clause(Clause(guard, "true"))


def _rewrite_clause(
    clause: Clause, out: Program, supplementary: bool, counter: list | None = None
) -> None:
    literals = _flatten(clause.body)
    head_guard = _magic_literal(clause.head)

    if not supplementary:
        prefix: list[Term] = [head_guard] if head_guard is not None else []
        for literal in literals:
            if _is_adorned(literal):
                guard = _magic_literal(literal)
                if guard is not None:
                    out.add_clause(
                        Clause(guard, _rebuild(list(prefix)), clause.varmap, clause.line)
                    )
            prefix.append(literal)
        out.add_clause(Clause(clause.head, _rebuild(prefix), clause.varmap, clause.line))
        return

    # Supplementary variant: thread the prefix state through sup predicates.
    assert counter is not None
    bound_vars: list[Var] = []
    if head_guard is not None:
        seen: set[int] = set()
        if isinstance(head_guard, Struct):
            for v in term_variables(head_guard):
                if v.id not in seen:
                    seen.add(v.id)
                    bound_vars.append(v)
    state_literal: Term | None = head_guard
    prefix_vars = list(bound_vars)
    for index, literal in enumerate(literals):
        if _is_adorned(literal):
            guard = _magic_literal(literal)
            if guard is not None:
                body = [state_literal] if state_literal is not None else []
                out.add_clause(Clause(guard, _rebuild(body), clause.varmap, clause.line))
        # extend the sup state with this literal
        counter[0] += 1
        for v in term_variables(literal):
            if all(v.id != u.id for u in prefix_vars):
                prefix_vars.append(v)
        sup_name = f"sup_{counter[0]}"
        sup_head = (
            Struct(sup_name, tuple(prefix_vars)) if prefix_vars else sup_name
        )
        body = ([state_literal] if state_literal is not None else []) + [literal]
        out.add_clause(Clause(sup_head, _rebuild(body), clause.varmap, clause.line))
        state_literal = sup_head
    final_body = [state_literal] if state_literal is not None else []
    out.add_clause(Clause(clause.head, _rebuild(final_body), clause.varmap, clause.line))


def magic_answers(engine_facts: list[Term], adorned_query: Term) -> list[Term]:
    """Filter bottom-up facts to instances of the (adorned) query."""
    results = []
    for fact in engine_facts:
        subst = unify(adorned_query, rename_apart(fact), EMPTY_SUBST)
        if subst is not None:
            results.append(subst.resolve(adorned_query))
    return results


def _flatten(body: Term) -> list[Term]:
    if body == "true":
        return []
    items: list[Term] = []
    stack = [body]
    while stack:
        term = stack.pop()
        if isinstance(term, Struct) and term.functor == "," and term.arity == 2:
            stack.append(term.args[1])
            stack.append(term.args[0])
        elif term == "true":
            continue
        else:
            items.append(term)
    return items


def _rebuild(literals: list[Term]) -> Term:
    if not literals:
        return "true"
    body = literals[-1]
    for literal in reversed(literals[:-1]):
        body = Struct(",", (literal, body))
    return body
