"""Supplementary tabling (paper section 4.2).

The strictness clauses of deeply nested equations have long bodies full
of existentially quantified demand variables; resolving them by plain
backtracking multiplies the alternatives of every literal (the paper
observes exactly this on ``pcprove``).  The remedy named by the paper —
XSB's compile-time *supplementary tabling*, the top-down analogue of
supplementary magic sets — factors each long clause body into a chain
of tabled intermediate predicates::

    h(H) :- l1, l2, ..., ln.
    ==>
    supp$c_1(S1) :- l1.
    supp$c_i(Si) :- supp$c_{i-1}(S(i-1)), li.        (i = 2..n-1)
    h(H)        :- supp$c_{n-1}(S(n-1)), ln.

where ``Si`` is the set of variables shared between the prefix
``l1..li`` (plus the head) and the rest of the clause.  Tabling each
``supp$`` predicate deduplicates the intermediate join results and
projects away variables used only inside the prefix, collapsing the
multiplicative search into per-step variant-checked tables.
"""

from __future__ import annotations

from repro.prolog.parser import Clause
from repro.prolog.program import Program
from repro.terms.term import Struct, Term, term_variables

SUPP_PREFIX = "supp$"


def supplementary_tables(
    program: Program, min_body: int = 3, only_tabled: bool = True
) -> Program:
    """Rewrite long clause bodies into tabled supplementary chains.

    Clauses with fewer than ``min_body`` body literals, or with
    non-conjunctive bodies at the top level, are kept as-is (control
    constructs appearing as single literals are treated opaquely and
    never split apart).  With ``only_tabled`` (default) only clauses of
    tabled predicates are rewritten.
    """
    out = Program()
    out.table_all = program.table_all
    out.tabled = set(program.tabled)
    out.directives = list(program.directives)
    out.source_lines = program.source_lines
    counter = 0
    for indicator in program.predicates():
        for clause in program.clauses_for(indicator):
            if only_tabled and not program.is_tabled(indicator):
                out.add_clause(clause)
                continue
            literals = _flatten(clause.body)
            if len(literals) < min_body or any(_is_control(l) for l in literals):
                out.add_clause(clause)
                continue
            counter += 1
            _rewrite(clause, literals, counter, out)
    return out


def _rewrite(clause: Clause, literals: list[Term], cid: int, out: Program) -> None:
    head_vars = _var_ids(clause.head)
    suffix_vars: list[set] = [set() for _ in literals]
    seen: set = set(head_vars)
    for i in range(len(literals) - 1, -1, -1):
        suffix_vars[i] = set(seen)
        seen |= set(_var_ids(literals[i]))
    # suffix_vars[i] = vars needed strictly after literal i (incl. head)

    available: dict[int, object] = {}
    for var in term_variables(clause.head):
        available[var.id] = var

    state: Term | None = None
    for i, literal in enumerate(literals[:-1]):
        for var in term_variables(literal):
            available.setdefault(var.id, var)
        shared = [
            available[vid] for vid in sorted(available) if vid in suffix_vars[i]
        ]
        name = f"{SUPP_PREFIX}{cid}_{i + 1}"
        supp_head: Term = Struct(name, tuple(shared)) if shared else name
        body = literal if state is None else Struct(",", (state, literal))
        out.add_clause(Clause(supp_head, body, {}, clause.line))
        out.tabled.add((name, len(shared)))
        state = supp_head
    final_body = (
        literals[-1] if state is None else Struct(",", (state, literals[-1]))
    )
    out.add_clause(Clause(clause.head, final_body, clause.varmap, clause.line))


def _var_ids(term: Term) -> list[int]:
    return [v.id for v in term_variables(term)]


def _is_control(literal: Term) -> bool:
    if isinstance(literal, Struct):
        return literal.functor in (";", "->", "\\+", "not", "call", "findall")
    return False


def _flatten(body: Term) -> list[Term]:
    if body == "true":
        return []
    items: list[Term] = []
    stack = [body]
    while stack:
        term = stack.pop()
        if isinstance(term, Struct) and term.functor == "," and term.arity == 2:
            stack.append(term.args[1])
            stack.append(term.args[0])
        elif term == "true":
            continue
        else:
            items.append(term)
    return items
