"""A compact ROBDD implementation (Bryant 1986 / [6] in the paper).

Nodes are hash-consed triples ``(var, low, high)`` with a fixed global
variable order (integer variable indexes; smaller index = nearer the
root).  All operations are memoized per manager; the memo caches are
*bounded* (``max_cache_entries``) and cleared wholesale when full — the
standard BDD-package discipline — so a long-lived manager (the
process-global one behind :class:`repro.bdd.propfn.BddPropFunction`)
cannot grow its caches without limit.  The unique table itself is
bounded two ways: a manager-local hard cap (``max_nodes``) and, for
governed analyses, the ``on_new_node`` hook, which the Prop backend
points at the active :class:`~repro.runtime.budget.ResourceGovernor`
so node creation charges a ``bdd_nodes`` budget.

Example::

    m = BDDManager()
    x, y = m.var(0), m.var(1)
    f = m.iff(x, y)          # x <-> y
    assert m.eval(f, {0: True, 1: True})
    assert sorted(m.allsat(f, [0, 1])) == [(False, False), (True, True)]
"""

from __future__ import annotations

import threading
from itertools import product

# Terminal node ids
FALSE = 0
TRUE = 1

BDD = int  # node index into the manager's table

#: default bound on each memo cache; at the bound the cache is cleared
#: (cheap, amortized, and the standard trade in BDD packages)
DEFAULT_MAX_CACHE_ENTRIES = 1 << 18

_OPS = {
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
    "xor": lambda a, b: a != b,
    "iff": lambda a, b: a == b,
    "imp": lambda a, b: (not a) or b,
}


class UniqueTableFull(MemoryError):
    """The manager's hard ``max_nodes`` cap was reached.

    Governed analyses normally trip the softer ``bdd_nodes`` budget
    first (via ``on_new_node``); this error is the manager-local
    backstop for unbudgeted use.
    """

    def __init__(self, nodes: int, limit: int):
        self.nodes = nodes
        self.limit = limit
        super().__init__(
            f"BDD unique table full: {nodes} nodes (cap {limit})"
        )


class BDDManager:
    """Owns the node table and operation caches for a family of BDDs.

    Instrumentation counters (``apply_cache_hits``,
    ``apply_cache_misses``, ``exists_cache_hits``, ``cache_clears``,
    ``peak_nodes``) are plain attributes; :meth:`publish_gauges` copies
    them into a metrics registry as ``bdd.*`` gauges.  ``lock`` is a
    re-entrant lock callers sharing a manager across threads (the
    process-global Prop backend) take around compound operations; the
    manager itself stays lock-free for single-threaded use.
    """

    def __init__(
        self,
        max_cache_entries: int = DEFAULT_MAX_CACHE_ENTRIES,
        max_nodes: int | None = None,
    ):
        # table[i] = (var, low, high); entries 0/1 are sentinels
        self._table: list[tuple] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple, int] = {}
        self._apply_cache: dict[tuple, int] = {}
        self._exists_cache: dict[tuple, int] = {}
        self.max_cache_entries = max_cache_entries
        self.max_nodes = max_nodes
        #: called with the new node count after each fresh interning;
        #: may raise (e.g. a governor charging a ``bdd_nodes`` budget)
        self.on_new_node = None
        self.apply_cache_hits = 0
        self.apply_cache_misses = 0
        self.exists_cache_hits = 0
        self.cache_clears = 0
        self.peak_nodes = 0
        self.lock = threading.RLock()

    # ------------------------------------------------------------------
    # Construction

    def mk(self, var: int, low: BDD, high: BDD) -> BDD:
        """The unique node for (var, low, high), reduced."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._table)
            self._table.append(key)
            self._unique[key] = node
            count = node - 1  # internal nodes (terminals excluded)
            if count > self.peak_nodes:
                self.peak_nodes = count
            if self.max_nodes is not None and count > self.max_nodes:
                raise UniqueTableFull(count, self.max_nodes)
            if self.on_new_node is not None:
                self.on_new_node(count)
        return node

    def var(self, index: int) -> BDD:
        """The BDD of the single variable ``index``."""
        return self.mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> BDD:
        """The BDD of the negated variable ``index``."""
        return self.mk(index, TRUE, FALSE)

    def constant(self, value: bool) -> BDD:
        return TRUE if value else FALSE

    # ------------------------------------------------------------------
    # Structure access

    def node(self, bdd: BDD) -> tuple:
        return self._table[bdd]

    def is_terminal(self, bdd: BDD) -> bool:
        return bdd in (FALSE, TRUE)

    def node_count(self) -> int:
        """Total internal nodes ever interned by this manager."""
        return len(self._table) - 2

    def size(self, bdd: BDD) -> int:
        """Number of distinct internal nodes reachable from ``bdd``."""
        seen: set[int] = set()
        stack = [bdd]
        while stack:
            node = stack.pop()
            if node in (FALSE, TRUE) or node in seen:
                continue
            seen.add(node)
            _, low, high = self._table[node]
            stack.append(low)
            stack.append(high)
        return len(seen)

    # ------------------------------------------------------------------
    # Memo-cache bounding and metrics

    def _cache_put(self, cache: dict, key, value) -> None:
        if len(cache) >= self.max_cache_entries:
            cache.clear()
            self.cache_clears += 1
        cache[key] = value

    def cache_sizes(self) -> dict:
        return {
            "apply": len(self._apply_cache),
            "exists": len(self._exists_cache),
        }

    def publish_gauges(self, registry) -> None:
        """Copy the manager's counters into ``registry`` as bdd.* gauges."""
        registry.gauge("bdd.nodes").set(self.node_count())
        registry.gauge("bdd.peak_nodes").set(self.peak_nodes)
        registry.gauge("bdd.apply_cache_hits").set(self.apply_cache_hits)
        registry.gauge("bdd.apply_cache_misses").set(self.apply_cache_misses)
        registry.gauge("bdd.exists_cache_hits").set(self.exists_cache_hits)
        registry.gauge("bdd.cache_clears").set(self.cache_clears)

    # ------------------------------------------------------------------
    # Boolean operations (Shannon-expansion apply)

    def apply(self, op: str, a: BDD, b: BDD) -> BDD:
        key = (op, a, b)
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.apply_cache_hits += 1
            return cached
        self.apply_cache_misses += 1
        result = self._apply(op, a, b)
        self._cache_put(self._apply_cache, key, result)
        return result

    def _apply(self, op: str, a: BDD, b: BDD) -> BDD:
        a_terminal = a in (FALSE, TRUE)
        b_terminal = b in (FALSE, TRUE)
        if a_terminal and b_terminal:
            return TRUE if _OPS[op](a == TRUE, b == TRUE) else FALSE
        # short circuits
        if op == "and":
            if a == FALSE or b == FALSE:
                return FALSE
            if a == TRUE:
                return b
            if b == TRUE:
                return a
            if a == b:
                return a
        elif op == "or":
            if a == TRUE or b == TRUE:
                return TRUE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
            if a == b:
                return a
        avar = self._table[a][0] if not a_terminal else None
        bvar = self._table[b][0] if not b_terminal else None
        if bvar is None or (avar is not None and avar < bvar):
            top = avar
        else:
            top = bvar
        if avar == top:
            _, a_low, a_high = self._table[a]
        else:
            a_low = a_high = a
        if bvar == top:
            _, b_low, b_high = self._table[b]
        else:
            b_low = b_high = b
        return self.mk(
            top, self.apply(op, a_low, b_low), self.apply(op, a_high, b_high)
        )

    def conj(self, a: BDD, b: BDD) -> BDD:
        return self.apply("and", a, b)

    def disj(self, a: BDD, b: BDD) -> BDD:
        return self.apply("or", a, b)

    def iff(self, a: BDD, b: BDD) -> BDD:
        return self.apply("iff", a, b)

    def xor(self, a: BDD, b: BDD) -> BDD:
        return self.apply("xor", a, b)

    def implies(self, a: BDD, b: BDD) -> BDD:
        return self.apply("imp", a, b)

    def neg(self, a: BDD) -> BDD:
        return self.apply("xor", a, TRUE)

    def conj_all(self, bdds) -> BDD:
        result = TRUE
        for bdd in bdds:
            result = self.conj(result, bdd)
        return result

    def disj_all(self, bdds) -> BDD:
        result = FALSE
        for bdd in bdds:
            result = self.disj(result, bdd)
        return result

    def iff_conj(self, lhs: int, rhs_vars) -> BDD:
        """``x_lhs <-> /\\ x_i`` — the groundness constraint of a term."""
        return self.iff(self.var(lhs), self.conj_all(self.var(v) for v in rhs_vars))

    # ------------------------------------------------------------------
    # Quantification, renaming and evaluation

    def restrict(self, bdd: BDD, var: int, value: bool) -> BDD:
        if bdd in (FALSE, TRUE):
            return bdd
        node_var, low, high = self._table[bdd]
        if node_var > var:
            return bdd
        if node_var == var:
            return high if value else low
        return self.mk(
            node_var,
            self.restrict(low, var, value),
            self.restrict(high, var, value),
        )

    def exists(self, bdd: BDD, var: int) -> BDD:
        key = (bdd, var)
        cached = self._exists_cache.get(key)
        if cached is None:
            cached = self.disj(
                self.restrict(bdd, var, False), self.restrict(bdd, var, True)
            )
            self._cache_put(self._exists_cache, key, cached)
        else:
            self.exists_cache_hits += 1
        return cached

    def exists_all(self, bdd: BDD, variables) -> BDD:
        for var in sorted(variables, reverse=True):
            bdd = self.exists(bdd, var)
        return bdd

    def shift_above(self, bdd: BDD, threshold: int, delta: int) -> BDD:
        """Rename every variable ``v >= threshold`` to ``v + delta``.

        A uniform shift of a suffix of the order is order-preserving,
        so the result is still reduced.  Callers must ensure the shifted
        range does not collide with untouched variables below
        ``threshold`` (all uses here shift a fully-quantified residue).
        """
        memo: dict[int, int] = {}

        def walk(node: BDD) -> BDD:
            if node in (FALSE, TRUE):
                return node
            out = memo.get(node)
            if out is None:
                var, low, high = self._table[node]
                new_var = var + delta if var >= threshold else var
                out = self.mk(new_var, walk(low), walk(high))
                memo[node] = out
            return out

        return walk(bdd)

    def eval(self, bdd: BDD, assignment: dict) -> bool:
        while bdd not in (FALSE, TRUE):
            var, low, high = self._table[bdd]
            bdd = high if assignment.get(var, False) else low
        return bdd == TRUE

    def entails(self, a: BDD, b: BDD) -> bool:
        """True iff ``a -> b`` is a tautology."""
        return self.implies(a, b) == TRUE

    def allsat(self, bdd: BDD, variables) -> list[tuple]:
        """All satisfying assignments over exactly ``variables``.

        Don't-care variables are expanded, so the result is the full
        truth set — the bridge back to the enumerative representation.
        """
        variables = list(variables)
        rows = []
        for values in product((False, True), repeat=len(variables)):
            if self.eval(bdd, dict(zip(variables, values))):
                rows.append(values)
        return rows

    def satcount(self, bdd: BDD, nvars: int) -> int:
        """Number of satisfying assignments over variables 0..nvars-1."""
        memo: dict[int, int] = {}

        def count(node: BDD, level: int) -> int:
            if node == FALSE:
                return 0
            if node == TRUE:
                return 2 ** (nvars - level)
            key = node
            cached = memo.get(key)
            if cached is not None:
                # memo stores count from the node's own level
                var, _, _ = self._table[node]
                return cached * 2 ** (var - level)
            var, low, high = self._table[node]
            result = count(low, var + 1) + count(high, var + 1)
            memo[key] = result
            return result * 2 ** (var - level)

        return count(bdd, 0)

    # ------------------------------------------------------------------
    # Bridges to the enumerative representation

    def from_rows(self, rows, variables) -> BDD:
        """Build the BDD of a truth set over the given variable indexes."""
        result = FALSE
        for row in rows:
            term = TRUE
            for var, value in zip(variables, row):
                literal = self.var(var) if value else self.nvar(var)
                term = self.conj(term, literal)
            result = self.disj(result, term)
        return result
