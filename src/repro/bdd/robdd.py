"""A compact ROBDD implementation (Bryant 1986 / [6] in the paper).

Nodes are hash-consed triples ``(var, low, high)`` with a fixed global
variable order (integer variable indexes; smaller index = nearer the
root).  All operations are memoized per manager.

Example::

    m = BDDManager()
    x, y = m.var(0), m.var(1)
    f = m.iff(x, y)          # x <-> y
    assert m.eval(f, {0: True, 1: True})
    assert sorted(m.allsat(f, [0, 1])) == [(False, False), (True, True)]
"""

from __future__ import annotations

from itertools import product

# Terminal node ids
FALSE = 0
TRUE = 1

BDD = int  # node index into the manager's table

_OPS = {
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
    "xor": lambda a, b: a != b,
    "iff": lambda a, b: a == b,
    "imp": lambda a, b: (not a) or b,
}


class BDDManager:
    """Owns the node table and operation caches for a family of BDDs."""

    def __init__(self):
        # table[i] = (var, low, high); entries 0/1 are sentinels
        self._table: list[tuple] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple, int] = {}
        self._apply_cache: dict[tuple, int] = {}
        self._exists_cache: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # Construction

    def mk(self, var: int, low: BDD, high: BDD) -> BDD:
        """The unique node for (var, low, high), reduced."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._table)
            self._table.append(key)
            self._unique[key] = node
        return node

    def var(self, index: int) -> BDD:
        """The BDD of the single variable ``index``."""
        return self.mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> BDD:
        """The BDD of the negated variable ``index``."""
        return self.mk(index, TRUE, FALSE)

    def constant(self, value: bool) -> BDD:
        return TRUE if value else FALSE

    # ------------------------------------------------------------------
    # Structure access

    def node(self, bdd: BDD) -> tuple:
        return self._table[bdd]

    def is_terminal(self, bdd: BDD) -> bool:
        return bdd in (FALSE, TRUE)

    def size(self, bdd: BDD) -> int:
        """Number of distinct internal nodes reachable from ``bdd``."""
        seen: set[int] = set()
        stack = [bdd]
        while stack:
            node = stack.pop()
            if node in (FALSE, TRUE) or node in seen:
                continue
            seen.add(node)
            _, low, high = self._table[node]
            stack.append(low)
            stack.append(high)
        return len(seen)

    # ------------------------------------------------------------------
    # Boolean operations (Shannon-expansion apply)

    def apply(self, op: str, a: BDD, b: BDD) -> BDD:
        key = (op, a, b)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        result = self._apply(op, a, b)
        self._apply_cache[key] = result
        return result

    def _apply(self, op: str, a: BDD, b: BDD) -> BDD:
        a_terminal = a in (FALSE, TRUE)
        b_terminal = b in (FALSE, TRUE)
        if a_terminal and b_terminal:
            return TRUE if _OPS[op](a == TRUE, b == TRUE) else FALSE
        # short circuits
        if op == "and":
            if a == FALSE or b == FALSE:
                return FALSE
            if a == TRUE:
                return b
            if b == TRUE:
                return a
            if a == b:
                return a
        elif op == "or":
            if a == TRUE or b == TRUE:
                return TRUE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
            if a == b:
                return a
        avar = self._table[a][0] if not a_terminal else None
        bvar = self._table[b][0] if not b_terminal else None
        if bvar is None or (avar is not None and avar < bvar):
            top = avar
        else:
            top = bvar
        if avar == top:
            _, a_low, a_high = self._table[a]
        else:
            a_low = a_high = a
        if bvar == top:
            _, b_low, b_high = self._table[b]
        else:
            b_low = b_high = b
        return self.mk(
            top, self.apply(op, a_low, b_low), self.apply(op, a_high, b_high)
        )

    def conj(self, a: BDD, b: BDD) -> BDD:
        return self.apply("and", a, b)

    def disj(self, a: BDD, b: BDD) -> BDD:
        return self.apply("or", a, b)

    def iff(self, a: BDD, b: BDD) -> BDD:
        return self.apply("iff", a, b)

    def xor(self, a: BDD, b: BDD) -> BDD:
        return self.apply("xor", a, b)

    def implies(self, a: BDD, b: BDD) -> BDD:
        return self.apply("imp", a, b)

    def neg(self, a: BDD) -> BDD:
        return self.apply("xor", a, TRUE)

    def conj_all(self, bdds) -> BDD:
        result = TRUE
        for bdd in bdds:
            result = self.conj(result, bdd)
        return result

    def disj_all(self, bdds) -> BDD:
        result = FALSE
        for bdd in bdds:
            result = self.disj(result, bdd)
        return result

    def iff_conj(self, lhs: int, rhs_vars) -> BDD:
        """``x_lhs <-> /\\ x_i`` — the groundness constraint of a term."""
        return self.iff(self.var(lhs), self.conj_all(self.var(v) for v in rhs_vars))

    # ------------------------------------------------------------------
    # Quantification and evaluation

    def restrict(self, bdd: BDD, var: int, value: bool) -> BDD:
        if bdd in (FALSE, TRUE):
            return bdd
        node_var, low, high = self._table[bdd]
        if node_var > var:
            return bdd
        if node_var == var:
            return high if value else low
        return self.mk(
            node_var,
            self.restrict(low, var, value),
            self.restrict(high, var, value),
        )

    def exists(self, bdd: BDD, var: int) -> BDD:
        key = (bdd, var)
        cached = self._exists_cache.get(key)
        if cached is None:
            cached = self.disj(
                self.restrict(bdd, var, False), self.restrict(bdd, var, True)
            )
            self._exists_cache[key] = cached
        return cached

    def exists_all(self, bdd: BDD, variables) -> BDD:
        for var in sorted(variables, reverse=True):
            bdd = self.exists(bdd, var)
        return bdd

    def eval(self, bdd: BDD, assignment: dict) -> bool:
        while bdd not in (FALSE, TRUE):
            var, low, high = self._table[bdd]
            bdd = high if assignment.get(var, False) else low
        return bdd == TRUE

    def entails(self, a: BDD, b: BDD) -> bool:
        """True iff ``a -> b`` is a tautology."""
        return self.implies(a, b) == TRUE

    def allsat(self, bdd: BDD, variables) -> list[tuple]:
        """All satisfying assignments over exactly ``variables``.

        Don't-care variables are expanded, so the result is the full
        truth set — the bridge back to the enumerative representation.
        """
        variables = list(variables)
        rows = []
        for values in product((False, True), repeat=len(variables)):
            if self.eval(bdd, dict(zip(variables, values))):
                rows.append(values)
        return rows

    def satcount(self, bdd: BDD, nvars: int) -> int:
        """Number of satisfying assignments over variables 0..nvars-1."""
        memo: dict[int, int] = {}

        def count(node: BDD, level: int) -> int:
            if node == FALSE:
                return 0
            if node == TRUE:
                return 2 ** (nvars - level)
            key = node
            cached = memo.get(key)
            if cached is not None:
                # memo stores count from the node's own level
                var, _, _ = self._table[node]
                return cached * 2 ** (var - level)
            var, low, high = self._table[node]
            result = count(low, var + 1) + count(high, var + 1)
            memo[key] = result
            return result * 2 ** (var - level)

        return count(bdd, 0)

    # ------------------------------------------------------------------
    # Bridges to the enumerative representation

    def from_rows(self, rows, variables) -> BDD:
        """Build the BDD of a truth set over the given variable indexes."""
        result = FALSE
        for row in rows:
            term = TRUE
            for var, value in zip(variables, row):
                literal = self.var(var) if value else self.nvar(var)
                term = self.conj(term, literal)
            result = self.disj(result, term)
        return result
