"""The Prop abstract domain backed by hash-consed ROBDDs.

:class:`BddPropFunction` is API-compatible with the enumerative
:class:`~repro.core.propdom.PropFunction` (meet/join/conj/disj,
``assume``, ``exists``, ``restrict_to``, ``definitely_true``,
``iff_closure``, ``__le__``/``__eq__``/``__hash__``, DNF rendering) but
represents the truth set as one node in a process-global
:class:`~repro.bdd.robdd.BDDManager`.  Where the enumerative
representation is exponential in arity (``top(n)`` alone materializes
2^n rows), the BDD operations are polynomial in the node counts of
their operands — the trade Howe & King identify as the right one for
real programs.

Variable convention: argument position ``i`` of an arity-``n``
function is BDD variable ``i``; variables ``>= n`` are scratch space
for renaming (:meth:`restrict_to`) and for embedding callee summaries
at an offset (:mod:`repro.baselines.gaia`).

The enumerative truth set stays reachable as the lazy :attr:`rows`
property (via ``allsat`` — exponential, for narrow-arity bridging,
serialization canonicalization and diagnostics only).  Cross-backend
``==``/``<=``/``conj``/``disj`` against a ``PropFunction`` go through
``rows``, so mixed-backend comparisons in tests and the soundness
harness keep working unchanged.

Budgeting: :func:`bdd_governed` points the global manager's
``on_new_node`` hook at a :class:`~repro.runtime.budget.ResourceGovernor`
so fresh node interning charges a ``bdd_nodes`` budget; a trip raises
:class:`~repro.runtime.budget.BddNodesExceeded`, which the groundness
driver turns into the ``bdd-widened`` degradation stage
(worst-case widening per Genaim/Howe/Codish — :meth:`BddPropFunction.widen`).
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import product

from repro.bdd.robdd import FALSE, TRUE, BDDManager
from repro.terms.term import Struct, Term, Var

_GLOBAL_MANAGER: BDDManager | None = None


def global_manager() -> BDDManager:
    """The process-global manager shared by all default-backend values.

    Sharing one manager is what makes hash-consing pay: equal functions
    are the *same* node, so ``__eq__``/``is_bottom`` are O(1) and apply
    results memoize across the whole analysis session.
    """
    global _GLOBAL_MANAGER
    if _GLOBAL_MANAGER is None:
        _GLOBAL_MANAGER = BDDManager()
    return _GLOBAL_MANAGER


def reset_global_manager() -> BDDManager:
    """Drop the global manager (tests): next use builds a fresh one."""
    global _GLOBAL_MANAGER
    _GLOBAL_MANAGER = None
    return global_manager()


@contextmanager
def bdd_governed(governor, manager: BDDManager | None = None):
    """Charge ``governor``'s ``bdd_nodes`` budget for fresh node interning.

    Only *new* nodes charge (hash-consing hits are free), so the budget
    measures genuine representation growth.  Nested uses compose: the
    previous hook is restored on exit.  A ``None`` governor is a no-op.
    """
    manager = manager if manager is not None else global_manager()
    if governor is None:
        yield manager
        return
    previous = manager.on_new_node

    def charge(count: int) -> None:
        if previous is not None:
            previous(count)
        governor.charge("bdd_nodes", context="bdd unique table")

    with manager.lock:
        manager.on_new_node = charge
    try:
        yield manager
    finally:
        with manager.lock:
            manager.on_new_node = previous


def publish_bdd_gauges(manager: BDDManager | None = None) -> None:
    """Export the manager's counters as ``bdd.*`` gauges on the active observer."""
    from repro.obs.observer import get_observer

    obs = get_observer()
    if getattr(obs, "enabled", False):
        (manager or global_manager()).publish_gauges(obs.registry)


class BddPropFunction:
    """A boolean function over ``n`` arguments as one ROBDD node.

    Drop-in for :class:`~repro.core.propdom.PropFunction` wherever the
    analyses use it; construct through the same classmethod vocabulary
    (:meth:`bottom`, :meth:`top`, :meth:`iff_conj`, :meth:`var_is`,
    :meth:`from_rows`) plus :meth:`from_answers`, which builds the
    function of a set of abstract answer terms *directly* — the
    polynomial replacement for the collector's exponential row
    expansion.
    """

    __slots__ = ("arity", "node", "manager", "_rows")

    def __init__(self, arity: int, node: int, manager: BDDManager | None = None):
        self.arity = arity
        self.node = node
        self.manager = manager if manager is not None else global_manager()
        self._rows = None

    # -- constructors ---------------------------------------------------
    @classmethod
    def bottom(cls, arity: int, manager: BDDManager | None = None) -> "BddPropFunction":
        """The unsatisfiable function (no successes)."""
        return cls(arity, FALSE, manager)

    @classmethod
    def top(cls, arity: int, manager: BDDManager | None = None) -> "BddPropFunction":
        """The always-true function — O(1), vs 2^n rows enumeratively."""
        return cls(arity, TRUE, manager)

    @classmethod
    def iff_conj(
        cls, arity: int, lhs: int, rhs: tuple, manager: BDDManager | None = None
    ) -> "BddPropFunction":
        """``x_lhs <-> /\\ x_i (i in rhs)``."""
        manager = manager if manager is not None else global_manager()
        with manager.lock:
            return cls(arity, manager.iff_conj(lhs, rhs), manager)

    @classmethod
    def var_is(
        cls, arity: int, index: int, value: bool, manager: BDDManager | None = None
    ) -> "BddPropFunction":
        manager = manager if manager is not None else global_manager()
        with manager.lock:
            node = manager.var(index) if value else manager.nvar(index)
        return cls(arity, node, manager)

    @classmethod
    def from_rows(
        cls, arity: int, rows, manager: BDDManager | None = None
    ) -> "BddPropFunction":
        """Import an enumerative truth set (the oracle bridge)."""
        manager = manager if manager is not None else global_manager()
        with manager.lock:
            node = manager.from_rows(rows, range(arity))
        return cls(arity, node, manager)

    @classmethod
    def from_function(cls, fn, manager: BDDManager | None = None) -> "BddPropFunction":
        """Coerce any Prop value (either backend) into this backend."""
        if isinstance(fn, cls):
            if manager is None or fn.manager is manager:
                return fn
        return cls.from_rows(fn.arity, fn.rows, manager)

    @classmethod
    def iff_closure(
        cls,
        arity: int,
        constraints,
        manager: BDDManager | None = None,
    ) -> "BddPropFunction":
        """``/\\ (x_lhs <-> /\\ rhs)`` over ``(lhs, rhs)`` pairs.

        The conjunction of a clause's iff constraints — one symbolic
        conjunction per constraint, no truth-table enumeration, so
        there is no arity cap on this backend.
        """
        manager = manager if manager is not None else global_manager()
        with manager.lock:
            node = TRUE
            for lhs, rhs in constraints:
                node = manager.conj(node, manager.iff_conj(lhs, tuple(rhs)))
        return cls(arity, node, manager)

    @classmethod
    def from_answers(
        cls, arity: int, answers, manager: BDDManager | None = None
    ) -> "BddPropFunction":
        """The function denoted by a set of abstract answer terms.

        Each answer (e.g. ``gp$ap(true, A, A)``) contributes one
        conjunction: ``true`` at position *i* is the literal ``x_i``,
        ``false`` is ``~x_i``, the first occurrence of a variable is a
        don't-care, and a *repeated* variable at position *i* adds
        ``x_i <-> x_first`` (shared variables must take equal values).
        The function is the disjunction over answers — polynomial in
        the answer count, where the enumerative collector expands
        ``2^(free vars)`` rows per answer.
        """
        manager = manager if manager is not None else global_manager()
        with manager.lock:
            node = FALSE
            for answer in answers:
                node = manager.disj(node, _answer_node(manager, answer, arity))
        return cls(arity, node, manager)

    # -- internal helpers -----------------------------------------------
    def _coerce(self, other) -> int:
        """The other operand as a node in *this* function's manager."""
        if isinstance(other, BddPropFunction) and other.manager is self.manager:
            return other.node
        with self.manager.lock:
            return self.manager.from_rows(other.rows, range(other.arity))

    def _make(self, arity: int, node: int) -> "BddPropFunction":
        return BddPropFunction(arity, node, self.manager)

    # -- lattice/logic operations ----------------------------------------
    def conj(self, other) -> "BddPropFunction":
        assert self.arity == other.arity
        with self.manager.lock:
            return self._make(self.arity, self.manager.conj(self.node, self._coerce(other)))

    def disj(self, other) -> "BddPropFunction":
        assert self.arity == other.arity
        with self.manager.lock:
            return self._make(self.arity, self.manager.disj(self.node, self._coerce(other)))

    # lattice-vocabulary aliases (Prop's meet is conjunction, join is
    # disjunction)
    meet = conj
    join = disj

    def exists(self, index: int) -> "BddPropFunction":
        """Existentially quantify argument ``index`` away (arity drops)."""
        manager = self.manager
        with manager.lock:
            node = manager.exists(self.node, index)
            # close the positional gap: arguments above ``index`` slide
            # down one place, as in the enumerative representation
            node = manager.shift_above(node, index + 1, -1)
        return self._make(self.arity - 1, node)

    def restrict_to(self, indexes: tuple) -> "BddPropFunction":
        """Project onto the given argument positions, in order.

        Implemented by tying scratch variable ``n + j`` to source
        position ``indexes[j]`` with an iff, quantifying all source
        positions away, then sliding the scratch block down to
        ``0..len(indexes)-1`` (a uniform, order-preserving shift).
        """
        manager = self.manager
        n = self.arity
        with manager.lock:
            node = self.node
            for j, src in enumerate(indexes):
                node = manager.conj(
                    node, manager.iff(manager.var(n + j), manager.var(src))
                )
            node = manager.exists_all(node, range(n))
            node = manager.shift_above(node, n, -n)
        return self._make(len(indexes), node)

    def assume(self, pattern: tuple) -> "BddPropFunction":
        """Condition on a call pattern: ``f /\\ x_i`` for ground positions."""
        ground = tuple(value is True for value in pattern)
        if not any(ground):
            return self
        manager = self.manager
        with manager.lock:
            node = self.node
            for index, is_ground in enumerate(ground):
                if is_ground:
                    node = manager.conj(node, manager.var(index))
        return self._make(self.arity, node)

    def definitely_true(self) -> tuple:
        """Per-argument "true in every satisfying assignment" flags."""
        if self.node == FALSE:
            return tuple(True for _ in range(self.arity))
        manager = self.manager
        with manager.lock:
            return tuple(
                manager.entails(self.node, manager.var(i))
                for i in range(self.arity)
            )

    def is_bottom(self) -> bool:
        return self.node == FALSE

    def widen(self, max_nodes: int) -> "BddPropFunction":
        """Worst-case widening (Genaim/Howe/Codish) past ``max_nodes``.

        When the ROBDD exceeds the node cap, return the *definite
        core*: the conjunction of the arguments the function entails —
        definite, at most one node per argument, and entailed by the
        original, hence a sound over-approximation.  Within the cap,
        return ``self`` unchanged.
        """
        manager = self.manager
        with manager.lock:
            if manager.size(self.node) <= max_nodes:
                return self
            node = TRUE
            for index, definite in enumerate(self.definitely_true()):
                if definite:
                    node = manager.conj(node, manager.var(index))
        return self._make(self.arity, node)

    def size(self) -> int:
        """Node count of this function's ROBDD (diagnostics/benchmarks)."""
        with self.manager.lock:
            return self.manager.size(self.node)

    # -- enumerative bridge ----------------------------------------------
    @property
    def rows(self) -> frozenset:
        """The explicit truth set (lazy; exponential in arity).

        The canonicalization boundary: serialization, cross-backend
        comparison and DNF rendering all read this, so enum- and
        BDD-produced values hash, compare and store identically.
        """
        if self._rows is None:
            with self.manager.lock:
                self._rows = frozenset(
                    self.manager.allsat(self.node, range(self.arity))
                )
        return self._rows

    # -- comparisons ------------------------------------------------------
    def __le__(self, other) -> bool:
        if isinstance(other, BddPropFunction) and other.manager is self.manager:
            with self.manager.lock:
                return self.manager.entails(self.node, other.node)
        return self.rows <= other.rows

    def __eq__(self, other) -> bool:
        if isinstance(other, BddPropFunction) and other.manager is self.manager:
            return self.arity == other.arity and self.node == other.node
        other_arity = getattr(other, "arity", None)
        other_rows = getattr(other, "rows", None)
        if other_arity is None or other_rows is None:
            return NotImplemented
        return self.arity == other_arity and self.rows == other_rows

    def __hash__(self) -> int:
        # same value as PropFunction.__hash__, so mixed-backend dict/set
        # keys collide correctly (exponential for wide arity — hash
        # narrow values only, as the analyses do)
        return hash((self.arity, self.rows))

    def __repr__(self) -> str:
        return f"BddPropFunction({self.arity}, nodes={self.size()})"

    def __reduce__(self):
        # pickles as the canonical truth set and re-interns in the
        # destination process's global manager
        return (_rebuild, (self.arity, tuple(sorted(self.rows))))

    def dnf(self, names: list[str] | None = None) -> str:
        """Same rendering as the enumerative backend, from the truth set."""
        rows = self.rows
        if not rows:
            return "false"
        if len(rows) == 2**self.arity:
            return "true"
        names = names or [f"X{i + 1}" for i in range(self.arity)]
        clauses = []
        for row in sorted(rows, reverse=True):
            literals = [
                name if value else f"~{name}" for name, value in zip(names, row)
            ]
            clauses.append(" & ".join(literals) if literals else "true")
        return " | ".join(f"({c})" for c in clauses)


def _rebuild(arity: int, rows) -> BddPropFunction:
    return BddPropFunction.from_rows(arity, rows)


def _answer_node(manager: BDDManager, answer: Term, arity: int) -> int:
    """The BDD of one abstract answer term (see :meth:`from_answers`)."""
    if arity == 0:
        return TRUE
    assert isinstance(answer, Struct)
    node = TRUE
    first_seen: dict[int, int] = {}
    for index, arg in enumerate(answer.args):
        if arg == "true":
            node = manager.conj(node, manager.var(index))
        elif arg == "false":
            node = manager.conj(node, manager.nvar(index))
        elif isinstance(arg, Var):
            first = first_seen.get(arg.id)
            if first is None:
                first_seen[arg.id] = index  # don't-care on first sight
            else:
                node = manager.conj(
                    node, manager.iff(manager.var(index), manager.var(first))
                )
        else:
            raise ValueError(f"non-boolean answer argument {arg!r}")
    return node
