"""Reduced Ordered Binary Decision Diagrams.

The comparison systems of the paper's section 4 ([10] Toupie, [40]
GAIA/Prop) represent Prop formulas as BDDs; this package provides the
ROBDD machinery for our stand-ins of those systems and for the
enumerative-vs-BDD ablation benchmarks.
"""

from repro.bdd.robdd import BDD, BDDManager

__all__ = ["BDD", "BDDManager"]
