"""Reduced Ordered Binary Decision Diagrams.

The comparison systems of the paper's section 4 ([10] Toupie, [40]
GAIA/Prop) represent Prop formulas as BDDs; this package provides the
ROBDD machinery behind the default Prop backend
(:class:`~repro.bdd.propfn.BddPropFunction`), the stand-ins of those
systems, and the enumerative-vs-BDD ablation benchmarks.
"""

from repro.bdd.robdd import BDD, BDDManager, UniqueTableFull
from repro.bdd.propfn import (
    BddPropFunction,
    bdd_governed,
    global_manager,
    publish_bdd_gauges,
    reset_global_manager,
)

__all__ = [
    "BDD",
    "BDDManager",
    "BddPropFunction",
    "UniqueTableFull",
    "bdd_governed",
    "global_manager",
    "publish_bdd_gauges",
    "reset_global_manager",
]
