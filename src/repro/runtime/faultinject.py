"""Deterministic fault injection for the resource governor.

A :class:`FaultInjector` is attached to a
:class:`~repro.runtime.budget.ResourceGovernor` and trips a chosen
budget at exactly the N-th event of a chosen kind — the N-th task, the
N-th recorded answer, the N-th semi-naive round, and so on.  Because
the trigger is an event *count* (not wall time), tests of the recovery
ladder are fully reproducible.

``times`` bounds how many runs the injector fires in: governors
restarted between degradation stages share the injector object, so
``times=1`` trips only the first (exact) stage and lets the first
retry succeed, ``times=2`` also trips the first retry, etc.
"""

from __future__ import annotations

from repro.runtime.budget import ERROR_FOR_KIND, EVENT_KINDS


class FaultInjector:
    """Trip budget ``kind`` at the ``at``-th event of kind ``event``.

    Parameters
    ----------
    event:
        Counted event kind: one of ``tasks``, ``steps``, ``rounds``,
        ``fuel``, ``answers``.
    at:
        Fire when the governed run's counter for ``event`` reaches this
        value (1-based).
    kind:
        Which :class:`ResourceExhausted` subclass to raise, by budget
        kind (default ``"deadline"``; ``"cancelled"`` simulates an
        interrupt).
    times:
        Maximum number of firings across all runs sharing this
        injector; ``None`` fires every time the trigger is reached.
    """

    def __init__(self, event: str, at: int, kind: str = "deadline",
                 times: int | None = None):
        if event not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {event!r}")
        if kind not in ERROR_FOR_KIND:
            raise ValueError(f"unknown budget kind {kind!r}")
        if at < 1:
            raise ValueError("fault trigger is 1-based")
        self.event = event
        self.at = at
        self.kind = kind
        self.times = times
        self.fired = 0

    def observe(self, kind: str, count: int, context=None) -> None:
        """Governor callback: raise the injected fault at the trigger."""
        if kind != self.event or count != self.at:
            return
        if self.times is not None and self.fired >= self.times:
            return
        self.fired += 1
        raise ERROR_FOR_KIND[self.kind](
            self.kind, spent=count, limit=count, context=context, injected=True
        )

    def __repr__(self) -> str:
        return (
            f"FaultInjector(event={self.event!r}, at={self.at}, "
            f"kind={self.kind!r}, fired={self.fired})"
        )
