"""Deterministic fault injection: budget-level and process-level.

A :class:`FaultInjector` is attached to a
:class:`~repro.runtime.budget.ResourceGovernor` and trips a chosen
budget at exactly the N-th event of a chosen kind — the N-th task, the
N-th recorded answer, the N-th semi-naive round, and so on.  Because
the trigger is an event *count* (not wall time), tests of the recovery
ladder are fully reproducible.

``times`` bounds how many runs the injector fires in: governors
restarted between degradation stages share the injector object, so
``times=1`` trips only the first (exact) stage and lets the first
retry succeed, ``times=2`` also trips the first retry, etc.

The *process-level* half simulates faults the governor cannot model
because they kill or wedge the whole worker process: a hard abort
(``os._exit``, standing in for segfaults and OOM kills), a hang past
the request deadline, and a corrupt reply on the IPC channel.  Specs
are plain JSON-able dicts so they cross the pickle boundary into
worker processes unchanged; :func:`apply_process_fault` is called by
the workers (:mod:`repro.parallel.corpus`, :mod:`repro.serve.pool`)
and a :class:`ProcessFaultPlan` deals a seeded, reproducible schedule
of such specs for chaos testing (:mod:`repro.serve.chaos`).
"""

from __future__ import annotations

import os
import random
import time

from repro.runtime.budget import ERROR_FOR_KIND, EVENT_KINDS


class FaultInjector:
    """Trip budget ``kind`` at the ``at``-th event of kind ``event``.

    Parameters
    ----------
    event:
        Counted event kind: one of ``tasks``, ``steps``, ``rounds``,
        ``fuel``, ``answers``.
    at:
        Fire when the governed run's counter for ``event`` reaches this
        value (1-based).
    kind:
        Which :class:`ResourceExhausted` subclass to raise, by budget
        kind (default ``"deadline"``; ``"cancelled"`` simulates an
        interrupt).
    times:
        Maximum number of firings across all runs sharing this
        injector; ``None`` fires every time the trigger is reached.
    """

    def __init__(self, event: str, at: int, kind: str = "deadline",
                 times: int | None = None):
        if event not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {event!r}")
        if kind not in ERROR_FOR_KIND:
            raise ValueError(f"unknown budget kind {kind!r}")
        if at < 1:
            raise ValueError("fault trigger is 1-based")
        self.event = event
        self.at = at
        self.kind = kind
        self.times = times
        self.fired = 0

    def observe(self, kind: str, count: int, context=None) -> None:
        """Governor callback: raise the injected fault at the trigger."""
        if kind != self.event or count != self.at:
            return
        if self.times is not None and self.fired >= self.times:
            return
        self.fired += 1
        raise ERROR_FOR_KIND[self.kind](
            self.kind, spent=count, limit=count, context=context, injected=True
        )

    def __repr__(self) -> str:
        return (
            f"FaultInjector(event={self.event!r}, at={self.at}, "
            f"kind={self.kind!r}, fired={self.fired})"
        )


# ----------------------------------------------------------------------
# Process-level faults


#: fault kinds a worker process can be asked to exhibit
PROCESS_FAULT_KINDS = ("abort", "hang", "corrupt")

#: the exit status an injected abort dies with (distinctive on purpose)
ABORT_EXIT_STATUS = 43

#: sentinel returned by :func:`apply_process_fault` for ``corrupt``:
#: the worker must garble its *reply*, which only the IPC layer can do
CORRUPT_REPLY = "corrupt-reply"


def apply_process_fault(spec: dict | None) -> str | None:
    """Exhibit the fault described by ``spec`` inside a worker process.

    ``spec`` is a JSON-able dict — ``{"kind": "abort" | "hang" |
    "corrupt", ...}`` — or ``None``/empty for no fault.

    * ``abort`` calls ``os._exit`` (no cleanup, no exception — the
      closest pure-Python stand-in for a segfault or OOM kill);
    * ``hang`` sleeps for ``spec["seconds"]`` (default 600 — far past
      any sane request deadline) and then returns, modelling a wedged
      worker that the supervisor must kill;
    * ``corrupt`` returns :data:`CORRUPT_REPLY`, instructing the IPC
      layer to send a malformed reply object instead of the real one.

    Returns ``None`` when no externally-visible fault is requested.
    """
    if not spec:
        return None
    kind = spec.get("kind")
    if kind is None:
        return None
    if kind not in PROCESS_FAULT_KINDS:
        raise ValueError(
            f"unknown process fault kind {kind!r}; have {PROCESS_FAULT_KINDS}"
        )
    if kind == "abort":
        os._exit(spec.get("status", ABORT_EXIT_STATUS))
    if kind == "hang":
        time.sleep(spec.get("seconds", 600.0))
        return None
    return CORRUPT_REPLY


class ProcessFaultPlan:
    """A seeded, reproducible schedule of process-level faults.

    ``deal(index)`` maps a request index to a fault spec (or ``None``)
    — the same seed always yields the same schedule, so a chaos run is
    exactly replayable.  ``rates`` maps fault kind to probability per
    request; kinds are drawn independently in a fixed order, first hit
    wins, so the marginal rates are slightly below nominal but stable.

    The plan lives in the *parent* (scheduler/driver) process: it deals
    specs that ride on requests into workers, keeping all randomness on
    one side of the process boundary.
    """

    def __init__(self, seed: int, rates: dict | None = None,
                 hang_seconds: float = 600.0):
        self.seed = seed
        self.rates = dict(rates) if rates else {"abort": 0.15, "hang": 0.1,
                                                "corrupt": 0.15}
        for kind in self.rates:
            if kind not in PROCESS_FAULT_KINDS:
                raise ValueError(f"unknown process fault kind {kind!r}")
        self.hang_seconds = hang_seconds
        self.dealt: list = []

    def deal(self, index: int) -> dict | None:
        """The fault spec for request ``index`` (deterministic in seed)."""
        rng = random.Random(f"{self.seed}:{index}")
        spec = None
        for kind in PROCESS_FAULT_KINDS:
            rate = self.rates.get(kind, 0.0)
            if rate and rng.random() < rate:
                spec = {"kind": kind}
                if kind == "hang":
                    spec["seconds"] = self.hang_seconds
                break
        self.dealt.append(spec)
        return spec

    def __repr__(self) -> str:
        return f"ProcessFaultPlan(seed={self.seed}, rates={self.rates})"
