"""Automated over-approximation checks between analysis results.

A degraded (budget-limited) run is *sound* iff it claims no more than
the unrestricted run: larger success sets, weaker groundness claims,
weaker demands.  These comparators make that checkable by a test
instead of by eye; they are the acceptance gate for the anytime mode.
"""

from __future__ import annotations

from repro.terms.term import Struct, Var


def groundness_over_approximates(degraded, exact) -> bool:
    """Prop groundness: every exact success row appears in the degraded
    function, hence every definite-groundness claim of the degraded
    result is also made by the exact one."""
    for indicator, precise in exact.predicates.items():
        loose = degraded.predicates.get(indicator)
        if loose is None:
            return False
        if not precise.success.rows <= loose.success.rows:
            return False
        for claim, truth in zip(loose.ground_at_call, precise.ground_at_call):
            if claim and not truth:
                return False
    return True


def depthk_over_approximates(degraded, exact) -> bool:
    """Depth-k: degraded groundness claims are weaker, and every exact
    answer shape is covered by some degraded shape."""
    for indicator, precise in exact.predicates.items():
        loose = degraded.predicates.get(indicator)
        if loose is None:
            return False
        for claim, truth in zip(loose.ground_on_success, precise.ground_on_success):
            if claim and not truth:
                return False
        for answer in precise.answers:
            if not any(shape_covers(general, answer) for general in loose.answers):
                return False
    return True


def strictness_over_approximates(degraded, exact) -> bool:
    """Strictness: per-argument guaranteed demands only weaken."""
    from repro.core.strictness import _RANK

    for key, precise in exact.functions.items():
        loose = degraded.functions.get(key)
        if loose is None:
            return False
        for claim, truth in zip(loose.demand_e, precise.demand_e):
            if _RANK[claim] > _RANK[truth]:
                return False
        for claim, truth in zip(loose.demand_d, precise.demand_d):
            if _RANK[claim] > _RANK[truth]:
                return False
    return True


def shape_covers(general, specific) -> bool:
    """Does abstract term ``general`` cover ``specific``?

    Variables are wildcards (sharing is ignored — permissive, so this
    is a necessary-condition check), ``$gamma`` covers any abstractly
    ground term, structures must match positionally.
    """
    from repro.core.depthk import GAMMA, is_abstractly_ground

    stack = [(general, specific)]
    while stack:
        g, s = stack.pop()
        if isinstance(g, Var):
            continue
        if g == GAMMA:
            if not is_abstractly_ground(s):
                return False
            continue
        if isinstance(g, Struct):
            if (
                not isinstance(s, Struct)
                or g.functor != s.functor
                or len(g.args) != len(s.args)
            ):
                return False
            stack.extend(zip(g.args, s.args))
            continue
        if g != s:
            return False
    return True
