"""Unified resource governance for the engines and analyses.

Worst-case Prop groundness is exponential and XSB itself treats table
space exhaustion and interruption as first-class engine concerns, so a
practical analysis system needs *anytime* behaviour: evaluation under a
budget, structured errors when a budget trips, and analyses that
degrade to sound (less precise) results instead of crashing.

This package provides the pieces:

* :mod:`repro.runtime.budget` — :class:`Budget` (declarative limits),
  :class:`ResourceGovernor` (live accounting, shared across nested
  engines), and the :class:`ResourceExhausted` error taxonomy;
* :mod:`repro.runtime.faultinject` — deterministic fault injection for
  exercising every recovery path in tests;
* :mod:`repro.runtime.degrade` — the staged degradation ladder used by
  the analyses (in-table widening to ⊤, depth reduction, all-top);
* :mod:`repro.runtime.soundness` — automated over-approximation checks
  between a degraded and an unrestricted analysis result.
"""

from repro.runtime.budget import (
    Budget,
    Cancelled,
    DeadlineExceeded,
    FuelExhausted,
    ResourceExhausted,
    ResourceGovernor,
    RoundBudgetExceeded,
    StepLimitExceeded,
    TableSpaceExceeded,
    TaskBudgetExceeded,
    AnswerBudgetExceeded,
)
from repro.runtime.degrade import (
    DegradationEvent,
    add_degradation_listener,
    notify_degradation,
    remove_degradation_listener,
    top_widening_join,
)
from repro.runtime.faultinject import FaultInjector
from repro.runtime.soundness import (
    depthk_over_approximates,
    groundness_over_approximates,
    strictness_over_approximates,
)

__all__ = [
    "Budget",
    "ResourceGovernor",
    "ResourceExhausted",
    "DeadlineExceeded",
    "TaskBudgetExceeded",
    "StepLimitExceeded",
    "RoundBudgetExceeded",
    "FuelExhausted",
    "TableSpaceExceeded",
    "AnswerBudgetExceeded",
    "Cancelled",
    "FaultInjector",
    "DegradationEvent",
    "top_widening_join",
    "add_degradation_listener",
    "remove_degradation_listener",
    "notify_degradation",
    "groundness_over_approximates",
    "depthk_over_approximates",
    "strictness_over_approximates",
]
