"""Entry point: ``python -m repro.runtime file.pl --deadline 2``."""

import sys

from repro.runtime.cli import main

if __name__ == "__main__":
    sys.exit(main())
