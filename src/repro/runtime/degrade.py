"""The staged degradation ladder shared by the analysis drivers.

When a governed analysis trips its budget, the drivers retry down a
ladder of progressively cheaper, progressively less precise — but
always *sound* — configurations (paper section 6.1 provides the key
mechanism, in-table widening via the ``answer_join`` hook):

1. **bdd-widen** — Prop BDD backend only: recollect with worst-case
   widening (Genaim, Howe & Codish): any per-table BDD past the node
   cap is replaced by its *definite core* — the conjunction of the
   variables it entails — a definite boolean function of at most
   linear size that over-approximates the original
   (:func:`worst_case_widen`);
2. **widen** — rerun with :func:`top_widening_join`: once a table has
   accumulated ``threshold`` answers, the join replaces further growth
   with the single most-general answer (the domain's ⊤ for that call),
   bounding every table while over-approximating its answer set;
3. **reduce-k** — depth-k analysis only: retry with a smaller depth
   bound (coarser abstract domain, geometrically cheaper);
4. **top** — give up on evaluation and return the all-⊤ result, which
   is trivially sound for the over-approximating analyses here.

Each failed stage is recorded as a :class:`DegradationEvent`; the
events ride on the result object and are broadcast to registered
listeners (:mod:`repro.harness.metrics` installs one).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.budget import ResourceExhausted, _describe
from repro.terms.term import Struct, Term, fresh_var
from repro.terms.variant import variant_key

#: ladder stage names, most precise first
STAGES = ("exact", "bdd-widened", "widened", "reduced-k", "top")


@dataclass
class DegradationEvent:
    """One budget trip during a staged analysis run."""

    analysis: str  # "groundness" | "depthk" | "strictness"
    stage: str  # the stage that tripped ("exact", "widened", "reduced-k(1)"...)
    kind: str  # budget kind that tripped
    spent: object
    limit: object
    context: str | None
    injected: bool = False

    @classmethod
    def from_error(cls, analysis: str, stage: str, error: ResourceExhausted):
        return cls(
            analysis=analysis,
            stage=stage,
            kind=error.kind,
            spent=error.spent,
            limit=error.limit,
            context=None if error.context is None else _describe(error.context),
            injected=error.injected,
        )


#: callables invoked with each DegradationEvent as it happens
_LISTENERS: list = []


def add_degradation_listener(listener) -> None:
    if listener not in _LISTENERS:
        _LISTENERS.append(listener)


def remove_degradation_listener(listener) -> None:
    if listener in _LISTENERS:
        _LISTENERS.remove(listener)


def notify_degradation(event: DegradationEvent) -> None:
    for listener in list(_LISTENERS):
        listener(event)
    # route to the current observer (if any): the per-run record of
    # budget trips, scoped by use_observer() rather than module state
    from repro.obs.observer import get_observer

    obs = get_observer()
    if obs.enabled:
        obs.registry.record_event(
            "degradation",
            analysis=event.analysis,
            stage=event.stage,
            budget_kind=event.kind,
            spent=event.spent,
            limit=event.limit,
            context=event.context,
            injected=event.injected,
        )
        obs.registry.counter(f"analysis.{event.analysis}.degradations").value += 1
        obs.event(
            "degradation",
            analysis=event.analysis,
            stage=event.stage,
            kind=event.kind,
        )


# ----------------------------------------------------------------------
# Stage 1 (Prop BDD backend): worst-case widening to the definite core


def worst_case_widen(fn, max_nodes: int, metric: str | None = None):
    """Widen a Prop function past ``max_nodes`` BDD nodes (GHC-style).

    Genaim, Howe & Codish ("Worst-Case Groundness Analysis Using
    Definite Boolean Functions"): when a positive function's ROBDD
    exceeds the node cap, replace it with its *definite core* — the
    conjunction of the variables it entails — which is definite, of at
    most one node per variable, and entailed by the original (a sound
    over-approximation).  Functions within the cap (and any non-BDD
    representation, which has no node count) pass through unchanged.

    ``metric`` optionally names an observer counter incremented each
    time a function is actually widened.
    """
    widen = getattr(fn, "widen", None)
    if widen is None:
        return fn
    widened = widen(max_nodes)
    if widened is not fn and metric is not None:
        from repro.obs.observer import get_observer

        obs = get_observer()
        if obs.enabled:
            obs.registry.counter(metric).value += 1
    return widened


# ----------------------------------------------------------------------
# Stage 2: in-table widening to the most general answer


def most_general_answer(answer: Term) -> Term:
    """The ⊤ answer for a table: same functor, all-fresh arguments.

    For Prop groundness this denotes the full truth table; for demand
    propagation every argument reads back as ``n`` (no claim); for
    depth-k it is the unconstrained shape.  In each case a superset of
    any concrete answer set — sound for the over-approximating
    analyses.
    """
    if isinstance(answer, Struct):
        return Struct(answer.functor, tuple(fresh_var() for _ in answer.args))
    return answer


def top_widening_join(threshold: int = 8, metric: str | None = None):
    """An ``answer_join`` hook widening any table past ``threshold``.

    While a table holds fewer than ``threshold`` answers, answers are
    recorded normally (``None`` = default insert).  At the threshold
    the join records the single most-general answer instead, and drops
    every subsequent answer (the ⊤ answer subsumes them), so no table
    — and no consumer fan-out — grows without bound.

    ``metric`` optionally names an observer counter (e.g.
    ``analysis.groundness.widenings``) incremented each time a table is
    actually widened to ⊤.
    """
    from repro.obs.observer import get_observer

    def join(existing: list, new: Term):
        if len(existing) < threshold:
            return None
        top = most_general_answer(new)
        if existing and variant_key(existing[-1]) == variant_key(top):
            return []  # already widened: drop the new answer
        if metric is not None:
            obs = get_observer()
            if obs.enabled:
                obs.registry.counter(metric).value += 1
        return [top]

    return join
