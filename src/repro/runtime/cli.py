"""Command line front end for anytime analysis under resource budgets.

``python -m repro.runtime FILE [FILE ...] [--analysis NAME] [--deadline S]
[--max-tasks N] [--max-answers N] [--table-bytes N] [--depth K]
[--no-degrade]``

Runs the chosen analysis under the requested budget.  When a budget
trips, the driver walks the degradation ladder (widen -> reduce-k ->
all-top) and the report is marked with the completeness stage that
produced it; ``--no-degrade`` turns the ladder off, so a trip exits
with status 3 instead.  ``.eq`` files get the strictness analysis by
default; everything else gets groundness.
"""

from __future__ import annotations

import argparse
import sys

from repro.runtime.budget import Budget, ResourceExhausted

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_EXHAUSTED = 3


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Anytime program analysis under resource budgets: "
        "groundness/depth-k for Prolog sources, strictness for .eq "
        "functional sources.  Budget trips degrade gracefully to a "
        "sound, less precise result unless --no-degrade is given.",
    )
    parser.add_argument("files", nargs="+", help="source files (.pl or .eq)")
    parser.add_argument(
        "--analysis",
        "-a",
        choices=["auto", "groundness", "depthk", "strictness"],
        default="auto",
        help="analysis to run (default: by file extension)",
    )
    parser.add_argument("--deadline", type=float, metavar="SECONDS",
                        help="wall-clock budget")
    parser.add_argument("--max-tasks", type=int, metavar="N",
                        help="tabled-engine task budget")
    parser.add_argument("--max-answers", type=int, metavar="N",
                        help="total recorded-answer budget")
    parser.add_argument("--table-bytes", type=int, metavar="N",
                        help="table-space byte cap")
    parser.add_argument("--depth", "-k", type=int, default=2, metavar="K",
                        help="depth bound for depthk (default 2)")
    parser.add_argument("--no-degrade", action="store_true",
                        help="fail on budget trip instead of degrading")
    return parser


def _pick_analysis(requested: str, path: str) -> str:
    if requested != "auto":
        return requested
    return "strictness" if path.endswith(".eq") else "groundness"


def _budget(args) -> Budget | None:
    limits = {
        "deadline": args.deadline,
        "tasks": args.max_tasks,
        "answers": args.max_answers,
        "table_bytes": args.table_bytes,
    }
    if all(v is None for v in limits.values()):
        return None
    return Budget(**limits)


def _report_header(path: str, analysis: str, result, out) -> None:
    line = f"{path}: {analysis}: completeness={result.completeness}"
    if getattr(result, "effective_depth", None) is not None:
        line += f" effective-depth={result.effective_depth}"
    line += f" table-space={result.table_space}B"
    print(line, file=out)
    for event in result.events:
        print(f"  degraded after {event.stage}: {event.kind} "
              f"(spent {event.spent} of {event.limit})", file=out)


def _run_one(path: str, analysis: str, args, out) -> int:
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"{path}: cannot read: {exc}", file=out)
        return EXIT_USAGE
    budget = _budget(args)
    degrade = not args.no_degrade
    try:
        if analysis == "strictness":
            from repro.core.strictness import analyze_strictness
            from repro.funlang.parser import parse_fun_program

            result = analyze_strictness(
                parse_fun_program(source), budget=budget, degrade=degrade
            )
            _report_header(path, analysis, result, out)
            for (name, arity), fn in sorted(result.functions.items()):
                strict = [str(i) for i in range(arity) if fn.is_strict(i)]
                print(f"  {name}/{arity}: strict in "
                      f"{{{', '.join(strict) or '-'}}} "
                      f"e-demands={''.join(fn.demand_e)} "
                      f"d-demands={''.join(fn.demand_d)}", file=out)
        else:
            from repro.prolog.program import load_program

            program = load_program(source)
            if analysis == "depthk":
                from repro.core.depthk import analyze_depthk

                result = analyze_depthk(
                    program, depth=args.depth, budget=budget, degrade=degrade
                )
                _report_header(path, analysis, result, out)
                for indicator, shapes in sorted(result.predicates.items()):
                    name, arity = indicator
                    flags = "".join("g" if g else "?" for g in shapes.ground_on_success)
                    print(f"  {name}/{arity}: ground-on-success={flags} "
                          f"shapes={len(shapes.answers)}", file=out)
            else:
                from repro.core.groundness import analyze_groundness

                result = analyze_groundness(program, budget=budget, degrade=degrade)
                _report_header(path, analysis, result, out)
                for indicator, pred in sorted(result.predicates.items()):
                    name, arity = indicator
                    succ = "".join("g" if g else "?" for g in pred.ground_on_success)
                    call = "".join("g" if g else "?" for g in pred.ground_at_call)
                    print(f"  {name}/{arity}: ground-on-success={succ} "
                          f"ground-at-call={call}", file=out)
    except ResourceExhausted as exc:
        print(f"{path}: resource exhausted: {exc}", file=out)
        return EXIT_EXHAUSTED
    except Exception as exc:  # parse errors etc.
        print(f"{path}: {type(exc).__name__}: {exc}", file=out)
        return EXIT_USAGE
    return EXIT_OK


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_arg_parser().parse_args(argv)
    exit_code = EXIT_OK
    for path in args.files:
        analysis = _pick_analysis(args.analysis, path)
        code = _run_one(path, analysis, args, out)
        if code != EXIT_OK:
            exit_code = code
    return exit_code
