"""Budgets, the resource governor, and the exhaustion error taxonomy.

A :class:`Budget` declares limits; a :class:`ResourceGovernor` holds
the live accounting for one evaluation (or one *family* of nested
evaluations — sub-engines spawned for ``\\+`` share the parent's
governor, so nested work can never overrun the parent's budget).

Every trip raises a kind-specific subclass of
:class:`ResourceExhausted`, which is itself a
:class:`~repro.engine.builtins.PrologError` so existing error handling
keeps working.  The exception carries the budget ``kind``, the
``spent``/``limit`` pair and the active goal or table ``context``, so
callers can decide how to degrade instead of parsing message strings.
"""

from __future__ import annotations

import threading
import time

from repro.errors import PrologError


class ResourceExhausted(PrologError):
    """A resource budget tripped (or the run was cancelled).

    Attributes
    ----------
    kind:
        ``"deadline"``, ``"tasks"``, ``"steps"``, ``"rounds"``,
        ``"fuel"``, ``"answers"``, ``"bdd_nodes"``, ``"table_bytes"``
        or ``"cancelled"``.
    spent / limit:
        Amount consumed when the budget tripped and the configured
        limit (equal for injected faults; ``None`` limit for
        cancellation).
    context:
        The active goal/table (a term or string) when known.
    injected:
        True when raised by a :class:`~repro.runtime.faultinject.FaultInjector`.
    """

    def __init__(self, kind, spent=None, limit=None, context=None, injected=False):
        self.kind = kind
        self.spent = spent
        self.limit = limit
        self.context = context
        self.injected = injected
        if kind == "cancelled":
            message = "evaluation cancelled"
        else:
            message = f"{_NOUN.get(kind, kind)} budget exhausted"
        if spent is not None and limit is not None:
            message += f": spent {spent} of {limit}"
        if context is not None:
            message += f" (at {_describe(context)})"
        if injected:
            message += " [injected]"
        super().__init__(message)


#: budget kind -> noun used in messages
_NOUN = {
    "tasks": "task",
    "steps": "step",
    "rounds": "round",
    "fuel": "fuel",
    "answers": "answer",
    "bdd_nodes": "BDD node",
    "table_bytes": "table space",
    "deadline": "deadline",
}


class DeadlineExceeded(ResourceExhausted):
    """Wall-clock deadline passed."""


class TaskBudgetExceeded(ResourceExhausted):
    """Tabled-engine task budget spent."""


class StepLimitExceeded(ResourceExhausted):
    """SLD resolution-step budget spent."""


class RoundBudgetExceeded(ResourceExhausted):
    """Bottom-up semi-naive round budget spent."""


class FuelExhausted(ResourceExhausted):
    """Functional-interpreter evaluation fuel spent."""


class AnswerBudgetExceeded(ResourceExhausted):
    """Total recorded-answer budget spent."""


class BddNodesExceeded(ResourceExhausted):
    """ROBDD unique-table node budget spent (Prop BDD backend)."""


class TableSpaceExceeded(ResourceExhausted):
    """Table-space byte cap exceeded."""


class Cancelled(ResourceExhausted):
    """The run was cooperatively cancelled."""


#: budget kind -> exception class raised when that budget trips
ERROR_FOR_KIND = {
    "deadline": DeadlineExceeded,
    "tasks": TaskBudgetExceeded,
    "steps": StepLimitExceeded,
    "rounds": RoundBudgetExceeded,
    "fuel": FuelExhausted,
    "answers": AnswerBudgetExceeded,
    "bdd_nodes": BddNodesExceeded,
    "table_bytes": TableSpaceExceeded,
    "cancelled": Cancelled,
}

#: countable event kinds the governor tracks
EVENT_KINDS = ("tasks", "steps", "rounds", "fuel", "answers", "bdd_nodes")


class Budget:
    """Declarative resource limits; ``None`` means unlimited.

    ``deadline`` is wall-clock seconds from governor start; the
    countable kinds are event counts; ``table_bytes`` caps the bytes
    *allocated* to tables across the governed run (a cumulative
    counter, maintained incrementally by the tabled engine).
    """

    __slots__ = (
        "deadline", "tasks", "steps", "rounds", "fuel", "answers",
        "bdd_nodes", "table_bytes",
    )

    def __init__(
        self,
        deadline: float | None = None,
        tasks: int | None = None,
        steps: int | None = None,
        rounds: int | None = None,
        fuel: int | None = None,
        answers: int | None = None,
        bdd_nodes: int | None = None,
        table_bytes: int | None = None,
    ):
        self.deadline = deadline
        self.tasks = tasks
        self.steps = steps
        self.rounds = rounds
        self.fuel = fuel
        self.answers = answers
        self.bdd_nodes = bdd_nodes
        self.table_bytes = table_bytes

    def limits(self) -> dict:
        return {k: getattr(self, k) for k in self.__slots__ if getattr(self, k) is not None}

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.limits().items())
        return f"Budget({parts})"


class ResourceGovernor:
    """Live resource accounting for one (family of) evaluation(s).

    Engines call :meth:`charge` per unit of work and :meth:`poll` on
    cheap paths; both raise the matching :class:`ResourceExhausted`
    subclass when a limit trips, when the deadline passes, or when
    :meth:`cancel` has been called (cooperative cancellation — safe to
    call from another thread or from inside an engine hook).

    Pass the *same* governor to nested engines so their work charges
    the parent budget as it happens — no re-granting, no underflow.
    """

    def __init__(self, budget: Budget | None = None, clock=time.monotonic, fault=None,
                 poll_interval: int = 64):
        self.budget = budget if budget is not None else Budget()
        self.clock = clock
        self.fault = fault
        self.spent = {kind: 0 for kind in EVENT_KINDS}
        self.table_bytes = 0
        self.cancelled = False
        self.started = clock()
        self.poll_interval = poll_interval
        self._deadline_at = (
            None if self.budget.deadline is None else self.started + self.budget.deadline
        )
        self._limits = {k: getattr(self.budget, k) for k in EVENT_KINDS}
        self._table_cap = self.budget.table_bytes
        self._charges = 0
        self._lock: threading.Lock | None = None

    def restarted(self) -> "ResourceGovernor":
        """A fresh governor over the same budget/fault/clock.

        Used between degradation stages: counters restart, but a fault
        injector keeps its global fire count (so staged retries can be
        exercised deterministically).
        """
        return ResourceGovernor(
            self.budget, clock=self.clock, fault=self.fault,
            poll_interval=self.poll_interval,
        )

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return self.clock() - self.started

    def remaining(self, kind: str):
        """Remaining allowance for a countable kind (None = unlimited)."""
        limit = self._limits.get(kind)
        if limit is None:
            return None
        return max(0, limit - self.spent[kind])

    def cancel(self) -> None:
        self.cancelled = True

    def make_thread_safe(self) -> None:
        """Serialise counter updates behind a lock (idempotent).

        The single-threaded hot path stays lock-free (one attribute
        check); parallel evaluators call this once before handing the
        governor to worker threads, so concurrent :meth:`charge` calls
        can neither lose counts nor race the limit comparison.
        :meth:`cancel` needs no lock — it is a monotonic boolean write,
        already safe to call from any thread.
        """
        if self._lock is None:
            self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def charge(self, kind: str, context=None) -> None:
        """Account one unit of ``kind``; raise if any budget tripped."""
        lock = self._lock
        if lock is None:
            self._charge(kind, context)
        else:
            with lock:
                self._charge(kind, context)

    def _charge(self, kind: str, context=None) -> None:
        spent = self.spent
        count = spent[kind] + 1
        spent[kind] = count
        if self.cancelled:
            raise Cancelled("cancelled", context=context)
        limit = self._limits[kind]
        if limit is not None and count > limit:
            raise ERROR_FOR_KIND[kind](kind, count, limit, context)
        fault = self.fault
        if fault is not None:
            fault.observe(kind, count, context)
        if self._deadline_at is not None:
            self._charges += 1
            if self._charges % self.poll_interval == 0 and self.clock() > self._deadline_at:
                raise DeadlineExceeded(
                    "deadline", round(self.elapsed(), 6), self.budget.deadline, context
                )

    def poll(self, context=None) -> None:
        """Cheap check (no counter): cancellation + throttled deadline."""
        if self.cancelled:
            raise Cancelled("cancelled", context=context)
        if self._deadline_at is not None:
            self._charges += 1
            if self._charges % self.poll_interval == 0 and self.clock() > self._deadline_at:
                raise DeadlineExceeded(
                    "deadline", round(self.elapsed(), 6), self.budget.deadline, context
                )

    def tick_table_bytes(self, delta: int, context=None) -> None:
        """Account table-space growth; raise when over the byte cap."""
        lock = self._lock
        if lock is None:
            self._tick_table_bytes(delta, context)
        else:
            with lock:
                self._tick_table_bytes(delta, context)

    def _tick_table_bytes(self, delta: int, context=None) -> None:
        self.table_bytes += delta
        if self._table_cap is not None and self.table_bytes > self._table_cap:
            raise TableSpaceExceeded(
                "table_bytes", self.table_bytes, self._table_cap, context
            )

    def __repr__(self) -> str:
        spent = {k: v for k, v in self.spent.items() if v}
        return f"ResourceGovernor(spent={spent}, table_bytes={self.table_bytes})"


def governor_for(
    budget: Budget | None = None,
    governor: ResourceGovernor | None = None,
    fault=None,
) -> ResourceGovernor | None:
    """Resolve the (budget, governor, fault) triple the drivers accept.

    An explicit governor wins; otherwise a budget and/or fault builds a
    fresh one; with neither, returns None (ungoverned fast path).
    """
    if governor is not None:
        return governor
    if budget is not None or fault is not None:
        return ResourceGovernor(budget, fault=fault)
    return None


def _describe(context) -> str:
    if isinstance(context, str):
        return context
    try:
        from repro.terms.term import term_to_str

        return term_to_str(context)
    except Exception:
        return repr(context)
