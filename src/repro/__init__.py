"""Practical program analysis on a general-purpose tabled logic engine.

Python reproduction of Dawson, Ramakrishnan & Warren, *Practical
Program Analysis Using General Purpose Logic Programming Systems — A
Case Study* (PLDI 1996).  The package provides:

* the evaluation substrate — a tabled (SLG/OLDT-style) logic
  programming engine (:mod:`repro.engine`), plus SLD and bottom-up
  engines and the magic-sets transformations (:mod:`repro.magic`);
* the case-study analyses — Prop-domain groundness, demand-propagation
  strictness, depth-k abstract terms, interval widening and
  Hindley-Milner types (:mod:`repro.core`);
* the comparison systems (:mod:`repro.baselines`), the benchmark
  suites (:mod:`repro.benchdata`) and the measurement harness
  (:mod:`repro.harness`).

Start with :func:`repro.prolog.load_program` and
:func:`repro.core.analyze_groundness`, or see ``examples/``.
"""

__version__ = "1.0.0"
