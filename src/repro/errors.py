"""Base error types shared across engines and the runtime governor.

Lives outside :mod:`repro.engine` so that :mod:`repro.runtime` (whose
error taxonomy subclasses :class:`PrologError`) can be imported without
triggering the engine package — the engines themselves import the
runtime for budget enforcement.
"""

from __future__ import annotations


class PrologError(Exception):
    """Runtime error in evaluation (instantiation, type, undefined...).

    ``line`` carries the source line of the clause being executed when
    the engine knows it, so messages can cite ``file:line`` the same
    way the static lint diagnostics do.
    """

    def __init__(self, message: str, line: int | None = None):
        if line:
            message = f"{message} (line {line})"
        super().__init__(message)
        self.line = line
