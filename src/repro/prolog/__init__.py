"""Prolog front end: reader, program representation and writer.

This is the "components to read and preprocess input programs" part of
the paper's 500-line system: a tokenizer and operator-precedence parser
for a practical subset of ISO Prolog, a :class:`Program` container with
first-argument clause indexing, and a pretty writer.
"""

from repro.prolog.lexer import tokenize, Token, PrologSyntaxError
from repro.prolog.parser import (
    parse_program,
    parse_term,
    parse_query,
    Clause,
)
from repro.prolog.program import Program, compile_program, load_program
from repro.prolog.writer import write_term, write_clause, write_program

__all__ = [
    "tokenize",
    "Token",
    "PrologSyntaxError",
    "parse_program",
    "parse_term",
    "parse_query",
    "Clause",
    "Program",
    "compile_program",
    "load_program",
    "write_term",
    "write_clause",
    "write_program",
]
