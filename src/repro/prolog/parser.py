"""Operator-precedence parser for a practical subset of ISO Prolog.

Supports the standard operator table (``:-``, ``;``, ``->``, ``\\+``,
comparison and arithmetic operators), lists, curly terms, quoted atoms
and double-quoted strings read as code lists.  Each clause gets its own
variable scope; ``_`` is always fresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.prolog import lexer
from repro.prolog.lexer import PrologSyntaxError, Token, tokenize
from repro.terms.term import Struct, Term, Var, fresh_var, make_list

# name -> (priority, type) maps; type in xfx/xfy/yfx (infix), fy/fx (prefix)
INFIX_OPS: dict[str, tuple[int, str]] = {
    ":-": (1200, "xfx"),
    "-->": (1200, "xfx"),
    ";": (1100, "xfy"),
    "->": (1050, "xfy"),
    ",": (1000, "xfy"),
    "=": (700, "xfx"),
    "\\=": (700, "xfx"),
    "==": (700, "xfx"),
    "\\==": (700, "xfx"),
    "@<": (700, "xfx"),
    "@>": (700, "xfx"),
    "@=<": (700, "xfx"),
    "@>=": (700, "xfx"),
    "=..": (700, "xfx"),
    "is": (700, "xfx"),
    "=:=": (700, "xfx"),
    "=\\=": (700, "xfx"),
    "<": (700, "xfx"),
    ">": (700, "xfx"),
    "=<": (700, "xfx"),
    ">=": (700, "xfx"),
    "+": (500, "yfx"),
    "-": (500, "yfx"),
    "/\\": (500, "yfx"),
    "\\/": (500, "yfx"),
    "xor": (500, "yfx"),
    "*": (400, "yfx"),
    "/": (400, "yfx"),
    "//": (400, "yfx"),
    "mod": (400, "yfx"),
    "rem": (400, "yfx"),
    "<<": (400, "yfx"),
    ">>": (400, "yfx"),
    "**": (200, "xfx"),
    "^": (200, "xfy"),
    "@": (200, "xfx"),  # used by some benchmark programs as a pairing operator
}

PREFIX_OPS: dict[str, tuple[int, str]] = {
    ":-": (1200, "fx"),
    "?-": (1200, "fx"),
    # declaration operators, as in XSB
    "table": (1150, "fx"),
    "dynamic": (1150, "fx"),
    "discontiguous": (1150, "fx"),
    "multifile": (1150, "fx"),
    "mode": (1150, "fx"),
    "\\+": (900, "fy"),
    "-": (200, "fy"),
    "+": (200, "fy"),
    "\\": (200, "fy"),
}


@dataclass
class Clause:
    """A program clause ``head :- body`` (``body is 'true'`` for facts).

    ``body`` is kept as a single term (possibly a ``','``/``';'`` tree);
    engines interpret control constructs.  ``varmap`` maps source
    variable names to the :class:`Var` objects of this clause.
    """

    head: Term
    body: Term
    varmap: dict[str, Var] = field(default_factory=dict)
    line: int = 0

    @property
    def indicator(self) -> tuple[str, int]:
        head = self.head
        if isinstance(head, Struct):
            return head.indicator
        if isinstance(head, str):
            return (head, 0)
        raise PrologSyntaxError(f"invalid clause head {head!r}", self.line)

    def is_fact(self) -> bool:
        return self.body == "true"


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self.varmap: dict[str, Var] = {}

    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect_punct(self, value: str) -> None:
        token = self.next()
        if not (token.kind in (lexer.PUNCT, lexer.OPEN_CT) and token.value == value):
            raise PrologSyntaxError(f"expected {value!r}, got {token.value!r}", token.line)

    # ------------------------------------------------------------------
    def parse_clause(self) -> Clause | None:
        if self.peek().kind == lexer.EOF:
            return None
        self.varmap = {}
        line = self.peek().line
        term = self.parse(1200)
        token = self.next()
        if token.kind != lexer.END:
            raise PrologSyntaxError(
                f"expected '.' at end of clause, got {token.value!r}", token.line
            )
        head, body = _split_clause(term, line)
        return Clause(head, body, dict(self.varmap), line)

    # ------------------------------------------------------------------
    def parse(self, max_prec: int) -> Term:
        left, left_prec = self.parse_left(max_prec)
        return self.parse_infix(left, left_prec, max_prec)

    def parse_left(self, max_prec: int) -> tuple[Term, int]:
        token = self.peek()
        if token.kind == lexer.ATOM and token.value in PREFIX_OPS:
            prec, optype = PREFIX_OPS[token.value]
            if prec <= max_prec and self.prefix_applies(token.value):
                self.next()
                # negative numeric literal
                if token.value == "-" and self.peek().kind == lexer.INT:
                    value = self.next().value
                    return -value, 0
                arg_max = prec if optype == "fy" else prec - 1
                arg = self.parse(arg_max)
                return Struct(token.value, (arg,)), prec
        return self.parse_primary(), 0

    def prefix_applies(self, name: str) -> bool:
        """Decide whether an operator atom is used as a prefix operator here."""
        nxt = self.tokens[self.pos + 1]
        if nxt.kind == lexer.OPEN_CT:
            return False  # f(...) call syntax
        if nxt.kind in (lexer.END, lexer.EOF):
            return False
        if nxt.kind == lexer.PUNCT and nxt.value in ")]},|":
            return False
        if nxt.kind == lexer.ATOM and nxt.value in INFIX_OPS and nxt.value not in PREFIX_OPS:
            return False  # e.g. "- =" : '-' is an operand here
        return True

    def parse_infix(self, left: Term, left_prec: int, max_prec: int) -> Term:
        while True:
            token = self.peek()
            name = None
            if token.kind == lexer.ATOM and token.value in INFIX_OPS:
                name = token.value
            elif token.kind == lexer.PUNCT and token.value == "," and max_prec >= 1000:
                name = ","
            elif token.kind == lexer.PUNCT and token.value == "|" and max_prec >= 1100:
                name = ";"  # '|' as disjunction at clause level
            if name is None:
                return left
            prec, optype = INFIX_OPS.get(name, (1100, "xfy"))
            if prec > max_prec:
                return left
            left_max = prec if optype == "yfx" else prec - 1
            if left_prec > left_max:
                return left
            self.next()
            right_max = prec if optype == "xfy" else prec - 1
            right = self.parse(right_max)
            left = Struct(name, (left, right))
            left_prec = prec

    def parse_primary(self) -> Term:
        token = self.next()
        if token.kind == lexer.INT:
            return token.value
        if token.kind == lexer.VAR:
            return self.make_var(token.value)
        if token.kind == lexer.STRING:
            return make_list([ord(c) for c in token.value])
        if token.kind in (lexer.ATOM, lexer.QATOM):
            if self.peek().kind == lexer.OPEN_CT:
                self.next()
                args = self.parse_arglist()
                return Struct(token.value, tuple(args))
            return token.value
        if token.kind in (lexer.PUNCT, lexer.OPEN_CT) and token.value == "(":
            term = self.parse(1200)
            self.expect_punct(")")
            return term
        if token.kind == lexer.PUNCT and token.value == "[":
            return self.parse_list()
        if token.kind == lexer.PUNCT and token.value == "{":
            if self.peek().kind == lexer.PUNCT and self.peek().value == "}":
                self.next()
                return "{}"
            term = self.parse(1200)
            self.expect_punct("}")
            return Struct("{}", (term,))
        raise PrologSyntaxError(f"unexpected token {token.value!r}", token.line)

    def parse_arglist(self) -> list[Term]:
        args = [self.parse(999)]
        while self.peek().kind == lexer.PUNCT and self.peek().value == ",":
            self.next()
            args.append(self.parse(999))
        self.expect_punct(")")
        return args

    def parse_list(self) -> Term:
        if self.peek().kind == lexer.PUNCT and self.peek().value == "]":
            self.next()
            return "[]"
        elements = [self.parse(999)]
        while self.peek().kind == lexer.PUNCT and self.peek().value == ",":
            self.next()
            elements.append(self.parse(999))
        tail: Term = "[]"
        if self.peek().kind == lexer.PUNCT and self.peek().value == "|":
            self.next()
            tail = self.parse(999)
        self.expect_punct("]")
        return make_list(elements, tail)

    def make_var(self, name: str) -> Var:
        if name == "_":
            return fresh_var("_")
        var = self.varmap.get(name)
        if var is None:
            var = fresh_var(name)
            self.varmap[name] = var
        return var


def _split_clause(term: Term, line: int) -> tuple[Term, Term]:
    if isinstance(term, Struct) and term.functor == ":-" and term.arity == 2:
        return term.args[0], term.args[1]
    if isinstance(term, Struct) and term.functor == ":-" and term.arity == 1:
        return ":-", term.args[0]  # directive: head is the atom ':-'
    return term, "true"


def parse_term(text: str) -> Term:
    """Parse a single term (no trailing '.') from ``text``."""
    parser = _Parser(tokenize(text))
    term = parser.parse(1200)
    token = parser.next()
    if token.kind not in (lexer.EOF, lexer.END):
        raise PrologSyntaxError(f"trailing input {token.value!r}", token.line)
    return term


def parse_query(text: str) -> tuple[Term, dict[str, Var]]:
    """Parse a query; returns the goal term and its variable map."""
    parser = _Parser(tokenize(text))
    term = parser.parse(1200)
    token = parser.next()
    if token.kind not in (lexer.EOF, lexer.END):
        raise PrologSyntaxError(f"trailing input {token.value!r}", token.line)
    return term, dict(parser.varmap)


def parse_program(text: str) -> list[Clause]:
    """Parse a full program text into clauses (directives included)."""
    parser = _Parser(tokenize(text))
    clauses = []
    while True:
        clause = parser.parse_clause()
        if clause is None:
            return clauses
        clauses.append(clause)
