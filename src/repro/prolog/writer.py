"""Pretty writer: terms and clauses back to (operator) Prolog syntax."""

from __future__ import annotations

from repro.prolog.parser import INFIX_OPS, PREFIX_OPS, Clause
from repro.terms.term import CONS, NIL, Struct, Term, Var, list_elements
from repro.terms.term import _atom_str  # shared atom quoting


def write_term(term: Term, max_prec: int = 1200) -> str:
    """Render ``term`` with operators and lists reconstructed."""
    if isinstance(term, Var):
        return term.display()
    if isinstance(term, int):
        return str(term)
    if isinstance(term, str):
        return _atom_str(term)
    if term.functor == CONS and term.arity == 2:
        return _write_list(term)
    if term.functor == "{}" and term.arity == 1:
        return "{" + write_term(term.args[0], 1200) + "}"
    if term.arity == 2 and term.functor in INFIX_OPS:
        prec, optype = INFIX_OPS[term.functor]
        lmax = prec if optype == "yfx" else prec - 1
        rmax = prec if optype == "xfy" else prec - 1
        text = (
            _write_operand(term.args[0], lmax)
            + _op_spelling(term.functor)
            + _write_operand(term.args[1], rmax)
        )
        return f"({text})" if prec > max_prec else text
    if term.arity == 1 and term.functor in PREFIX_OPS:
        prec, optype = PREFIX_OPS[term.functor]
        amax = prec if optype == "fy" else prec - 1
        # parenthesize the operand: "- 0" would re-read as the integer
        # -0 and "- +1" would lex as the symbolic atom '-+'
        text = _atom_str(term.functor) + " (" + write_term(term.args[0], 1200) + ")"
        return f"({text})" if prec > max_prec else text
    args = ",".join(write_term(a, 999) for a in term.args)
    return f"{_atom_str(term.functor)}({args})"


def _op_spelling(name: str) -> str:
    if name == ",":
        return ","
    # spaces prevent adjacent symbolic tokens from lexing as one atom
    return f" {name} "


def _write_operand(term: Term, max_prec: int) -> str:
    """An infix operand; operator atoms are parenthesized: ``a - (+)``."""
    if isinstance(term, str) and (term in INFIX_OPS or term in PREFIX_OPS):
        return f"({_atom_str(term)})"
    return write_term(term, max_prec)


def _write_list(term: Term) -> str:
    elements, tail = list_elements(term)
    inner = ",".join(write_term(e, 999) for e in elements)
    if tail == NIL:
        return f"[{inner}]"
    return f"[{inner}|{write_term(tail, 999)}]"


def write_clause(clause: Clause) -> str:
    if clause.is_fact():
        return write_term(clause.head) + "."
    return write_term(clause.head) + " :- " + write_term(clause.body, 1199) + "."


def write_program(clauses) -> str:
    return "\n".join(write_clause(c) for c in clauses) + "\n"
