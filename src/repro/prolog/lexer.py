"""Tokenizer for the Prolog reader.

Produces a stream of :class:`Token` objects.  Handles ``%`` line
comments, ``/* */`` block comments, quoted atoms with escapes, symbolic
atoms (maximal munch over symbol characters), ``0'c`` character codes
and double-quoted strings (read as code lists by the parser).
"""

from __future__ import annotations

from dataclasses import dataclass


class PrologSyntaxError(Exception):
    """Raised on lexical or syntax errors, with line information."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


# Token kinds
ATOM = "atom"  # value: atom name (unquoted or quoted)
QATOM = "qatom"  # quoted atom: never an operator
VAR = "var"  # value: variable name
INT = "int"  # value: int
STRING = "string"  # value: str contents
PUNCT = "punct"  # value: one of ( ) [ ] { } , |
OPEN_CT = "open_ct"  # '(' immediately after an atom (no layout): call syntax
END = "end"  # clause-terminating '.'
EOF = "eof"


@dataclass
class Token:
    kind: str
    value: object
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


_SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")
_SOLO = set("()[]{},|")
_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "`": "`",
    "0": "\0",
}


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    line = 1
    prev_solid = False  # previous char ended an atom/var/int (for open_ct)
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            prev_solid = False
            continue
        if c in " \t\r\f":
            i += 1
            prev_solid = False
            continue
        if c == "%":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end < 0:
                raise PrologSyntaxError("unterminated block comment", line)
            line += text.count("\n", i, end)
            i = end + 2
            prev_solid = False
            continue
        if c == "(":
            tokens.append(Token(OPEN_CT if prev_solid else PUNCT, "(", line))
            i += 1
            prev_solid = False
            continue
        if c in _SOLO:
            tokens.append(Token(PUNCT, c, line))
            i += 1
            prev_solid = False
            continue
        if c == "!" or c == ";":
            tokens.append(Token(ATOM, c, line))
            i += 1
            prev_solid = True
            continue
        if c.isdigit():
            i, line = _lex_number(text, i, line, tokens)
            prev_solid = True
            continue
        if c == "_" or c.isupper():
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(VAR, text[i:j], line))
            i = j
            prev_solid = True
            continue
        if c.islower():
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(ATOM, text[i:j], line))
            i = j
            prev_solid = True
            continue
        if c == "'":
            value, i, line = _lex_quoted(text, i + 1, line, "'")
            tokens.append(Token(QATOM, value, line))
            prev_solid = True
            continue
        if c == '"':
            value, i, line = _lex_quoted(text, i + 1, line, '"')
            tokens.append(Token(STRING, value, line))
            prev_solid = True
            continue
        if c in _SYMBOL_CHARS:
            j = i + 1
            while j < n and text[j] in _SYMBOL_CHARS:
                j += 1
            symbol = text[i:j]
            if symbol == "." and (j >= n or text[j] in " \t\r\n%"):
                tokens.append(Token(END, ".", line))
            else:
                tokens.append(Token(ATOM, symbol, line))
            i = j
            prev_solid = True
            continue
        raise PrologSyntaxError(f"unexpected character {c!r}", line)
    tokens.append(Token(EOF, None, line))
    return tokens


def _lex_number(text: str, i: int, line: int, tokens: list[Token]) -> tuple[int, int]:
    n = len(text)
    # 0'c character code
    if text[i] == "0" and i + 1 < n and text[i + 1] == "'":
        if i + 2 < n and text[i + 2] == "\\" and i + 3 < n:
            esc = _ESCAPES.get(text[i + 3])
            if esc is None:
                raise PrologSyntaxError(f"bad escape \\{text[i + 3]}", line)
            tokens.append(Token(INT, ord(esc), line))
            return i + 4, line
        if i + 2 < n:
            tokens.append(Token(INT, ord(text[i + 2]), line))
            return i + 3, line
        raise PrologSyntaxError("unterminated character code", line)
    if text[i] == "0" and i + 1 < n and text[i + 1] == "x":
        j = i + 2
        while j < n and text[j] in "0123456789abcdefABCDEF":
            j += 1
        tokens.append(Token(INT, int(text[i + 2 : j], 16), line))
        return j, line
    j = i
    while j < n and text[j].isdigit():
        j += 1
    tokens.append(Token(INT, int(text[i:j]), line))
    return j, line


def _lex_quoted(text: str, i: int, line: int, quote: str) -> tuple[str, int, int]:
    n = len(text)
    parts: list[str] = []
    while i < n:
        c = text[i]
        if c == quote:
            if i + 1 < n and text[i + 1] == quote:  # doubled quote
                parts.append(quote)
                i += 2
                continue
            return "".join(parts), i + 1, line
        if c == "\\":
            if i + 1 < n and text[i + 1] == "\n":  # line continuation
                line += 1
                i += 2
                continue
            if i + 1 < n and text[i + 1] in _ESCAPES:
                parts.append(_ESCAPES[text[i + 1]])
                i += 2
                continue
            raise PrologSyntaxError("bad escape in quoted token", line)
        if c == "\n":
            line += 1
        parts.append(c)
        i += 1
    raise PrologSyntaxError("unterminated quoted token", line)
