"""Program container: clauses grouped by predicate, table declarations.

A :class:`Program` is the front end's output and every engine's input.
Directives recognised:

* ``:- table p/2.`` (or a comma list) marks predicates as tabled;
* ``:- table_all.`` marks every predicate as tabled (used by the
  analysis drivers, which table the whole abstract program);
* other directives are retained in :attr:`Program.directives` and
  otherwise ignored.
"""

from __future__ import annotations

from repro.prolog.parser import Clause, parse_program
from repro.terms.term import Struct, Term

Indicator = tuple[str, int]


class Program:
    """Clauses grouped by predicate indicator, in source order."""

    def __init__(self):
        self.clauses: dict[Indicator, list[Clause]] = {}
        self.order: list[Indicator] = []
        self.tabled: set[Indicator] = set()
        self.table_all = False
        self.directives: list[Term] = []
        self.source_lines = 0

    # ------------------------------------------------------------------
    def add_clause(self, clause: Clause) -> None:
        indicator = clause.indicator
        if indicator == (":-", 0):
            self._handle_directive(clause.body)
            return
        group = self.clauses.get(indicator)
        if group is None:
            group = []
            self.clauses[indicator] = group
            self.order.append(indicator)
        group.append(clause)

    def add_clauses(self, clauses) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def _handle_directive(self, body: Term) -> None:
        self.directives.append(body)
        if isinstance(body, Struct) and body.functor == "table" and body.arity == 1:
            for spec in _comma_list(body.args[0]):
                indicator = _parse_indicator(spec)
                if indicator is not None:
                    self.tabled.add(indicator)
        elif body == "table_all":
            self.table_all = True

    # ------------------------------------------------------------------
    def is_tabled(self, indicator: Indicator) -> bool:
        return self.table_all or indicator in self.tabled

    def predicates(self) -> list[Indicator]:
        """All defined predicate indicators, in order of first clause."""
        return list(self.order)

    def clauses_for(self, indicator: Indicator) -> list[Clause]:
        return self.clauses.get(indicator, [])

    def clause_count(self) -> int:
        return sum(len(group) for group in self.clauses.values())

    def __len__(self) -> int:
        return self.clause_count()

    def copy(self) -> "Program":
        dup = Program()
        dup.clauses = {k: list(v) for k, v in self.clauses.items()}
        dup.order = list(self.order)
        dup.tabled = set(self.tabled)
        dup.table_all = self.table_all
        dup.directives = list(self.directives)
        dup.source_lines = self.source_lines
        return dup


def _comma_list(term: Term) -> list[Term]:
    items = []
    while isinstance(term, Struct) and term.functor == "," and term.arity == 2:
        items.append(term.args[0])
        term = term.args[1]
    items.append(term)
    return items


def _parse_indicator(spec: Term) -> Indicator | None:
    if (
        isinstance(spec, Struct)
        and spec.functor == "/"
        and spec.arity == 2
        and isinstance(spec.args[0], str)
        and isinstance(spec.args[1], int)
    ):
        return (spec.args[0], spec.args[1])
    return None


def load_program(text: str) -> Program:
    """Parse ``text`` and load it as *dynamic* code (the ``assert`` path).

    This is the cheap-preprocessing route the paper advocates: clauses
    are stored as terms and interpreted by the engines.  See
    :func:`compile_program` for the full-compilation comparator.
    """
    program = Program()
    program.add_clauses(parse_program(text))
    program.source_lines = _count_source_lines(text)
    return program


def compile_program(text: str) -> Program:
    """Parse and *fully compile* ``text`` for fastest resolution.

    On top of :func:`load_program` this precompiles every clause into
    the template form used by the engines' fast path (variable
    numbering, ground-subterm sharing, first-argument index).  It costs
    more preprocessing time — the trade-off studied in the paper's
    Section 4 and our E6 ablation.
    """
    # Imported here to keep the front end free of engine dependencies.
    from repro.engine.clausedb import ClauseDB

    program = load_program(text)
    database = ClauseDB(program, compiled=True)
    program.prepared_db = database
    return program


def _count_source_lines(text: str) -> int:
    """Non-blank, non-comment-only source lines (the paper's size metric)."""
    count = 0
    for raw in text.splitlines():
        line = raw.strip()
        if line and not line.startswith("%"):
            count += 1
    return count
